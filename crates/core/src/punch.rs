//! Power Punch (Chen, Zhu, Pedram & Pinkston, HPCA'15) — the third prior
//! power-gating scheme the paper's §II discusses: "a performance-aware,
//! non-blocking power-gating scheme that wakes up powered-off routers along
//! the path of a packet in advance, thereby preventing the packet from
//! suffering router wakeup latency".
//!
//! Model: routers gate freely (no adjacency/AON/connectivity constraints —
//! wake-on-demand provides connectivity); when a packet enters a NIC queue,
//! the mechanism immediately sends *power punches* (wake signals) to every
//! sleeping router on the packet's YX path, so the ~10-cycle wakeup ramp
//! overlaps with the packet's injection serialization and upstream hops.
//! Routing is plain YX; a packet whose next hop is not yet Active simply
//! waits at its current router (there are no FLOV latches and no bypass
//! ring in this scheme, so nothing ever flies over a gated router).
//!
//! Run it with `NocConfig { escape_vcs: 0, .. }`: YX is deadlock-free on
//! its own and a `route() == None` must mean "wait for the punched wakeup",
//! not "divert to the escape network" ([`punch_config`] does this).
//!
//! The interesting trade vs FLOV, which the tests and the `punch` binary
//! quantify: Power Punch keeps latency near Baseline like FLOV does, but
//! every through-packet forces a wake/re-drain cycle of intermediate
//! routers (gating-event energy + powered residency), where FLOV's latches
//! let them stay asleep.

use flov_noc::network::NetworkCore;
use flov_noc::routing::{yx_route, RouteCtx};
use flov_noc::traits::{PowerMechanism, PowerView};
use flov_noc::types::{Coord, Cycle, NodeId, PacketId, Port, PowerState};

/// Configuration adjustments Power Punch needs: no escape VCs (waiting on a
/// punched wakeup must not divert to the FLOV escape network).
pub fn punch_config(base: &flov_noc::NocConfig) -> flov_noc::NocConfig {
    flov_noc::NocConfig {
        escape_vcs: 0,
        // Keep the total VC count comparable.
        regular_vcs: base.regular_vcs + base.escape_vcs,
        ..base.clone()
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct NodeCtl {
    drain_since: Cycle,
    stable: u32,
    ramp: u32,
    /// Cycles to stay awake after the last punch (lets the punched packet
    /// actually pass before the idle detector re-drains).
    punch_hold_until: Cycle,
    /// Earliest cycle the next drain attempt may start (post-timeout backoff).
    retry_after: Cycle,
}

/// The Power Punch mechanism.
pub struct PowerPunch {
    pub idle_threshold: u32,
    pub drain_timeout: u32,
    pub handshake_rtt: u32,
    /// Keep a punched router awake this long after its punch.
    pub punch_hold: u32,
    ctl: Vec<NodeCtl>,
    /// Packets whose paths have already been punched.
    punched: std::collections::HashSet<PacketId>,
    /// Punch signals sent (energy/overhead accounting).
    pub punches_sent: u64,
    wake_buf: Vec<NodeId>,
    /// Persistent scratch for the punch/re-punch scans (kept across cycles
    /// so the steady-state control step never allocates).
    to_punch: Vec<(NodeId, NodeId)>,
    to_repunch: Vec<(NodeId, NodeId)>,
}

impl PowerPunch {
    pub fn new(cfg: &flov_noc::NocConfig) -> PowerPunch {
        assert_eq!(cfg.escape_vcs, 0, "Power Punch requires escape_vcs = 0 (see punch_config)");
        PowerPunch {
            idle_threshold: cfg.idle_threshold,
            drain_timeout: 256,
            handshake_rtt: 2,
            punch_hold: 48,
            ctl: vec![NodeCtl::default(); cfg.nodes()],
            punched: std::collections::HashSet::new(),
            punches_sent: 0,
            wake_buf: Vec::new(),
            to_punch: Vec::new(),
            to_repunch: Vec::new(),
        }
    }

    /// Walk the YX path from `src` to `dst`, punching every non-active
    /// router (including the destination).
    fn punch_path(&mut self, core: &mut NetworkCore, src: NodeId, dst: NodeId) {
        let (kx, ky) = (core.cfg.kx(), core.cfg.ky());
        let mut at = Coord { x: src % kx, y: src / kx };
        let dstc = Coord { x: dst % kx, y: dst / kx };
        loop {
            let n = at.y * kx + at.x;
            let now = core.cycle;
            self.ctl[n as usize].punch_hold_until = now + self.punch_hold as u64;
            match core.power(n) {
                PowerState::Sleep => {
                    core.begin_wakeup(n);
                    core.activity.handshake_signals += 1;
                    self.punches_sent += 1;
                    let c = &mut self.ctl[n as usize];
                    c.ramp = core.cfg.wakeup_latency;
                    c.stable = 0;
                }
                PowerState::Draining => {
                    // A punch overrides a drain in progress.
                    core.abort_drain(n);
                    core.activity.handshake_signals += 1;
                    self.punches_sent += 1;
                }
                _ => {}
            }
            let p = yx_route(at, dstc);
            let Some(d) = p.dir() else { break };
            at = flov_noc::topology::grid_step(at, d, kx, ky).expect("yx stays in the grid");
        }
    }
}

impl PowerMechanism for PowerPunch {
    fn name(&self) -> &'static str {
        "PowerPunch"
    }

    fn step(&mut self, core: &mut NetworkCore) {
        // Exactly prologue + per-node scan in id order + epilogue — the
        // contract that lets the parallel kernel shard this step.
        self.control_prologue(core);
        for n in 0..core.nodes() as NodeId {
            self.control_node(core, n);
        }
        self.control_epilogue(core);
    }

    fn sharded_control(&self) -> bool {
        true
    }

    fn control_prologue(&mut self, core: &mut NetworkCore) {
        let now = core.cycle;
        // Fallback wakeups (should be rare: punches precede packets).
        let mut wake = std::mem::take(&mut self.wake_buf);
        core.take_wakeup_requests(&mut wake);
        for &n in wake.iter() {
            if core.power(n) == PowerState::Sleep {
                core.begin_wakeup(n);
                let c = &mut self.ctl[n as usize];
                c.ramp = core.cfg.wakeup_latency;
                c.stable = 0;
            }
        }
        self.wake_buf = wake;
        // Punch the paths of newly queued packets.
        let mut to_punch = std::mem::take(&mut self.to_punch);
        for node in 0..core.nodes() {
            for q in &core.nics[node].queues {
                for pkt in q.iter() {
                    if !self.punched.contains(&pkt.id) {
                        to_punch.push((pkt.src, pkt.dst));
                        self.punched.insert(pkt.id);
                    }
                }
            }
        }
        for &(src, dst) in to_punch.iter() {
            self.punch_path(core, src, dst);
        }
        to_punch.clear();
        self.to_punch = to_punch;
        // Re-punch stalled packets. A punch holds routers awake only for
        // `punch_hold` cycles, so a packet delayed in the mesh (VC
        // backpressure, congestion behind another wakeup ramp) can face a
        // next hop that re-drained after its original punch expired — and
        // `route()` then waits for a wakeup that is never coming. Any head
        // flit parked at a buffer front for a full drain-timeout window
        // gets its remaining YX path re-punched from where it stands, once
        // per window.
        let repunch_after = self.drain_timeout as u64;
        let mut to_repunch = std::mem::take(&mut self.to_repunch);
        for n in 0..core.nodes() {
            let r = &core.routers[n];
            if r.port_occupancy.iter().all(|&o| o == 0) {
                continue;
            }
            for s in 0..r.total_vcs() * flov_noc::types::NUM_PORTS {
                let invc = &r.inputs[s];
                if invc.alloc.is_some() {
                    continue;
                }
                let Some(f) = invc.buf.front() else { continue };
                let waited = now.saturating_sub(invc.head_since);
                if waited >= repunch_after && waited.is_multiple_of(repunch_after) {
                    to_repunch.push((n as NodeId, f.dst));
                }
            }
        }
        for &(at, dst) in to_repunch.iter() {
            self.punch_path(core, at, dst);
        }
        to_repunch.clear();
        self.to_repunch = to_repunch;
    }

    fn control_quiet(&self, core: &NetworkCore, n: NodeId) -> bool {
        let now = core.cycle;
        match core.power(n) {
            // The neighbor-draining blocker is deliberately excluded: it
            // reads neighbor power states that a lower-id node may change
            // this phase, so `control_node` re-evaluates it at its serial
            // position. `punch_hold_until` is safe: the prologue (which
            // writes it) runs before any verdict is taken.
            PowerState::Active => {
                !(!core.router_core_active(n)
                    && core.routers[n as usize].local_idle(now) >= self.idle_threshold as u64
                    && now >= self.ctl[n as usize].punch_hold_until
                    && now >= self.ctl[n as usize].retry_after
                    && !core.nic_pending(n))
            }
            // Mid-handshake FSMs tick their own control state every cycle.
            PowerState::Draining | PowerState::Wakeup => false,
            PowerState::Sleep => !(core.router_core_active(n) || core.nic_pending(n)),
        }
    }

    fn control_node(&mut self, core: &mut NetworkCore, n: NodeId) -> bool {
        let now = core.cycle;
        // Power FSM (NoRD-style: no adjacency constraints, but punched
        // routers hold awake for a while).
        match core.power(n) {
            PowerState::Active => {
                let gated = !core.router_core_active(n);
                let idle = core.routers[n as usize].local_idle(now) >= self.idle_threshold as u64;
                let held = now < self.ctl[n as usize].punch_hold_until;
                // Adjacent simultaneous drains starve each other (each
                // blocks the other's egress): forbid them, id order
                // arbitrating simultaneous attempts.
                let neighbor_draining = flov_noc::types::Dir::ALL.iter().any(|&d| {
                    core.neighbor(n, d).is_some_and(|m| core.power(m) == PowerState::Draining)
                });
                if gated
                    && idle
                    && !held
                    && !neighbor_draining
                    && now >= self.ctl[n as usize].retry_after
                    && !core.nic_pending(n)
                {
                    core.begin_drain(n);
                    let c = &mut self.ctl[n as usize];
                    c.drain_since = now;
                    c.stable = 0;
                    return true;
                }
                false
            }
            PowerState::Draining => {
                let held = now < self.ctl[n as usize].punch_hold_until;
                if core.router_core_active(n) || core.nic_pending(n) || held {
                    core.abort_drain(n);
                    return true;
                }
                if now - self.ctl[n as usize].drain_since > self.drain_timeout as u64 {
                    core.abort_drain(n);
                    self.ctl[n as usize].retry_after = now + 4 * self.drain_timeout as u64;
                    return true;
                }
                let ready = core.routers[n as usize].is_drained() && core.fully_quiescent(n);
                let c = &mut self.ctl[n as usize];
                if ready {
                    c.stable += 1;
                    if c.stable >= self.handshake_rtt {
                        core.enter_sleep(n);
                        return true;
                    }
                } else {
                    c.stable = 0;
                }
                false
            }
            PowerState::Sleep => {
                if core.router_core_active(n) || core.nic_pending(n) {
                    core.begin_wakeup(n);
                    let c = &mut self.ctl[n as usize];
                    c.ramp = core.cfg.wakeup_latency;
                    c.stable = 0;
                    return true;
                }
                false
            }
            PowerState::Wakeup => {
                let c = &mut self.ctl[n as usize];
                if c.ramp > 0 {
                    c.ramp -= 1;
                    return false;
                }
                let ready = core.routers[n as usize].latches_empty() && core.fully_quiescent(n);
                let c = &mut self.ctl[n as usize];
                if ready {
                    c.stable += 1;
                    if c.stable >= self.handshake_rtt {
                        core.complete_wakeup(n);
                        return true;
                    }
                } else {
                    c.stable = 0;
                }
                false
            }
        }
    }

    fn control_epilogue(&mut self, _core: &mut NetworkCore) {
        // Bound the punched-set memory (ids of long-delivered packets).
        if self.punched.len() > 100_000 {
            self.punched.clear();
        }
    }

    fn route(&self, net: &dyn PowerView, ctx: &RouteCtx) -> Option<Port> {
        let out = yx_route(ctx.at, ctx.dst);
        let Some(d) = out.dir() else { return Some(out) };
        // No bypass datapath: wait until the (punched) next hop is Active.
        let next =
            flov_noc::topology::grid_step(ctx.at, d, ctx.kx, ctx.ky).expect("yx stays in the grid");
        if net.power(next.y * ctx.kx + next.x) == PowerState::Active {
            Some(out)
        } else {
            None
        }
    }

    fn next_event(&self, core: &NetworkCore) -> Option<Cycle> {
        let now = core.cycle;
        // The punch scan reads NIC queues, which quiescence leaves empty;
        // only the power FSM self-schedules.
        let mut next: Option<Cycle> = None;
        for n in 0..core.nodes() as NodeId {
            match core.power(n) {
                PowerState::Draining | PowerState::Wakeup => return Some(now),
                PowerState::Active => {
                    if core.router_core_active(n) {
                        continue;
                    }
                    let c = &self.ctl[n as usize];
                    let t = (core.routers[n as usize].last_local_activity
                        + self.idle_threshold as u64)
                        .max(c.retry_after)
                        .max(c.punch_hold_until)
                        .max(now);
                    next = Some(next.map_or(t, |b| b.min(t)));
                }
                PowerState::Sleep => {
                    if core.router_core_active(n) {
                        return Some(now);
                    }
                }
            }
        }
        next
    }

    fn audit_state(&self, core: &NetworkCore, report: &mut dyn FnMut(String)) {
        // Power Punch runs without the escape network ([`punch_config`]):
        // a `route() == None` means "wait for the punched wakeup", and an
        // escape VC would turn that wait into a divert.
        if core.cfg.escape_vcs != 0 {
            report(format!(
                "PowerPunch requires escape_vcs == 0 (got {}); see punch_config",
                core.cfg.escape_vcs
            ));
        }
        for n in 0..core.nodes() as NodeId {
            // Nothing ever flies over a gated router in this scheme, so a
            // sleeping router's FLOV latches must stay empty.
            if core.power(n).is_flov() && !core.routers[n as usize].latches_empty() {
                report(format!("PowerPunch router {n} is gated but holds latched flits"));
            }
            // Same adjacent-drain arbitration as NoRD. Edges once.
            if core.power(n) == PowerState::Draining {
                for d in flov_noc::types::Dir::ALL {
                    if let Some(m) = core.neighbor(n, d) {
                        if m > n && core.power(m) == PowerState::Draining {
                            report(format!(
                                "PowerPunch arbitration: adjacent routers {n} and {m} both \
                                 Draining"
                            ));
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flov_noc::network::Simulation;
    use flov_noc::traits::{PacketRequest, ScriptedWorkload};
    use flov_noc::NocConfig;

    fn cfg() -> NocConfig {
        punch_config(&NocConfig { k: 4, vnets: 1, watchdog_cycles: 20_000, ..NocConfig::default() })
    }

    fn gate_all_but(active: &[u16]) -> Vec<(u64, NodeId, bool)> {
        (0..16).filter(|n| !active.contains(n)).map(|n| (0u64, n, false)).collect()
    }

    #[test]
    fn config_swaps_escape_for_regular_vc() {
        let c = cfg();
        assert_eq!(c.escape_vcs, 0);
        assert_eq!(c.regular_vcs, 4); // 3 + 1
    }

    #[test]
    fn gates_everything_when_idle() {
        let c = cfg();
        let w = ScriptedWorkload::new(vec![]).with_core_events(gate_all_but(&[]));
        let mut sim = Simulation::new(c.clone(), Box::new(PowerPunch::new(&c)), Box::new(w));
        sim.run(3_000);
        let asleep = (0..16u16).filter(|&n| sim.core.power(n) == PowerState::Sleep).count();
        assert_eq!(asleep, 16, "Power Punch should gate every idle router");
    }

    #[test]
    fn punch_wakes_the_path_and_delivers() {
        let c = cfg();
        let gates = gate_all_but(&[0, 15]);
        let w = ScriptedWorkload::new(vec![(
            3_000,
            PacketRequest { src: 0, dst: 15, vnet: 0, len: 4 },
        )])
        .with_core_events(gates);
        let mut sim = Simulation::new(c.clone(), Box::new(PowerPunch::new(&c)), Box::new(w));
        sim.run(2_500);
        // Path routers asleep before the punch.
        assert_eq!(sim.core.power(4), PowerState::Sleep); // YX: column 0 first
        let end = sim.run_until_done(20_000);
        assert!(end < 20_000, "punched packet not delivered");
        assert_eq!(sim.core.activity.packets_delivered, 1);
        // After the hold expires, the path re-drains.
        sim.run(2_000);
        assert_eq!(sim.core.power(4), PowerState::Sleep, "path did not re-gate");
    }

    #[test]
    fn wakeup_latency_is_hidden_for_long_paths() {
        // The defining claim: with the punch sent at queue time, far-away
        // routers are awake by the time the packet arrives, so latency is
        // close to an all-on mesh.
        let c = cfg();
        let gates = gate_all_but(&[0, 15]);
        let mut events = Vec::new();
        for i in 0..40u64 {
            events.push((3_000 + i * 400, PacketRequest { src: 0, dst: 15, vnet: 0, len: 4 }));
        }
        let w = ScriptedWorkload::new(events).with_core_events(gates);
        let mut sim = Simulation::new(c.clone(), Box::new(PowerPunch::new(&c)), Box::new(w));
        let end = sim.run_until_done(60_000);
        assert!(end < 60_000);
        // Unloaded YX path 0->15: 7 routers * 3 + 7 links + 3 serial ~ 31;
        // with punches the measured average should be within ~60% of that
        // (first hops still see some ramp), far below 31 + 6*10 = 91 if
        // every hop had to wake on demand.
        let lat = sim.core.stats.avg_latency();
        assert!(lat < 55.0, "punch failed to hide wakeup latency: {lat}");
        // And routers really were gated between packets (400-cycle gaps >
        // punch_hold + idle threshold).
        let gated: u64 = sim.core.residency().iter().map(|r| r.gated).sum();
        assert!(gated > 0);
    }

    #[test]
    fn through_traffic_churns_gating_events() {
        // The cost vs FLOV: every burst re-wakes the path.
        let c = cfg();
        let gates = gate_all_but(&[0, 15]);
        let mut events = Vec::new();
        for i in 0..10u64 {
            events.push((3_000 + i * 1_200, PacketRequest { src: 0, dst: 15, vnet: 0, len: 4 }));
        }
        let w = ScriptedWorkload::new(events).with_core_events(gates);
        let mut sim = Simulation::new(c.clone(), Box::new(PowerPunch::new(&c)), Box::new(w));
        let end = sim.run_until_done(60_000);
        assert!(end < 60_000);
        // Each of the 10 well-separated packets re-punches ~5 sleeping
        // routers: expect a pile of gating events (sleep+wake pairs).
        assert!(
            sim.core.activity.gating_events > 60,
            "expected wake/sleep churn, got {} events",
            sim.core.activity.gating_events
        );
    }
}
