//! Destination partitioning (paper Fig. 4a).
//!
//! Each router divides the mesh into eight partitions around itself: the
//! four straight lines along its own row/column (odd numbers) and the four
//! quadrants (even numbers). Routing decisions are made from the partition
//! the destination falls into plus the neighboring routers' power states.

use flov_noc::types::{Coord, Dir};

/// The eight destination partitions. Odd = straight, even = quadrant,
/// numbered counter-clockwise starting from the NE quadrant, matching the
/// paper's convention (partitions 1/3/5/7 map to N/W/S/E).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Partition {
    /// Quadrant: strictly north-east.
    NE = 0,
    /// Straight north (same column).
    N = 1,
    /// Quadrant: strictly north-west.
    NW = 2,
    /// Straight west (same row).
    W = 3,
    /// Quadrant: strictly south-west.
    SW = 4,
    /// Straight south (same column).
    S = 5,
    /// Quadrant: strictly south-east.
    SE = 6,
    /// Straight east (same row).
    E = 7,
}

impl Partition {
    /// Partition of `dst` as seen from `at`; `None` when they coincide.
    #[inline]
    pub fn of(at: Coord, dst: Coord) -> Option<Partition> {
        use std::cmp::Ordering::*;
        match (dst.x.cmp(&at.x), dst.y.cmp(&at.y)) {
            (Equal, Equal) => None,
            (Equal, Greater) => Some(Partition::N),
            (Equal, Less) => Some(Partition::S),
            (Greater, Equal) => Some(Partition::E),
            (Less, Equal) => Some(Partition::W),
            (Greater, Greater) => Some(Partition::NE),
            (Less, Greater) => Some(Partition::NW),
            (Less, Less) => Some(Partition::SW),
            (Greater, Less) => Some(Partition::SE),
        }
    }

    /// True for the straight partitions 1/3/5/7.
    #[inline]
    pub fn is_straight(self) -> bool {
        (self as u8) % 2 == 1
    }

    /// For straight partitions: the direction pointing at the destination.
    #[inline]
    pub fn straight_dir(self) -> Option<Dir> {
        match self {
            Partition::N => Some(Dir::North),
            Partition::W => Some(Dir::West),
            Partition::S => Some(Dir::South),
            Partition::E => Some(Dir::East),
            _ => None,
        }
    }

    /// For quadrant partitions: the Y-direction component toward the
    /// destination (the preferred first move, YX order).
    #[inline]
    pub fn quadrant_y(self) -> Option<Dir> {
        match self {
            Partition::NE | Partition::NW => Some(Dir::North),
            Partition::SE | Partition::SW => Some(Dir::South),
            _ => None,
        }
    }

    /// For quadrant partitions: the X-direction component toward the
    /// destination.
    #[inline]
    pub fn quadrant_x(self) -> Option<Dir> {
        match self {
            Partition::NE | Partition::SE => Some(Dir::East),
            Partition::NW | Partition::SW => Some(Dir::West),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(x: u16, y: u16) -> Coord {
        Coord::new(x, y)
    }

    #[test]
    fn straight_partitions() {
        let at = c(3, 3);
        assert_eq!(Partition::of(at, c(3, 6)), Some(Partition::N));
        assert_eq!(Partition::of(at, c(3, 0)), Some(Partition::S));
        assert_eq!(Partition::of(at, c(7, 3)), Some(Partition::E));
        assert_eq!(Partition::of(at, c(0, 3)), Some(Partition::W));
    }

    #[test]
    fn quadrant_partitions() {
        let at = c(3, 3);
        assert_eq!(Partition::of(at, c(5, 5)), Some(Partition::NE));
        assert_eq!(Partition::of(at, c(1, 5)), Some(Partition::NW));
        assert_eq!(Partition::of(at, c(1, 1)), Some(Partition::SW));
        assert_eq!(Partition::of(at, c(5, 1)), Some(Partition::SE));
    }

    #[test]
    fn self_is_none() {
        assert_eq!(Partition::of(c(2, 2), c(2, 2)), None);
    }

    #[test]
    fn numbering_matches_paper() {
        // Partitions 1, 3, 5, 7 are N, W, S, E (paper §V).
        assert_eq!(Partition::N as u8, 1);
        assert_eq!(Partition::W as u8, 3);
        assert_eq!(Partition::S as u8, 5);
        assert_eq!(Partition::E as u8, 7);
        assert!(Partition::N.is_straight());
        assert!(!Partition::NE.is_straight());
    }

    #[test]
    fn exhaustive_coverage_8x8() {
        // Every (at, dst) pair lands in exactly one partition and the
        // quadrant decomposition is consistent with the component dirs.
        for ax in 0..8 {
            for ay in 0..8 {
                for dx in 0..8 {
                    for dy in 0..8 {
                        let at = c(ax, ay);
                        let dst = c(dx, dy);
                        match Partition::of(at, dst) {
                            None => assert_eq!(at, dst),
                            Some(p) if p.is_straight() => {
                                let d = p.straight_dir().unwrap();
                                let (ddx, ddy) = d.delta();
                                // Moving toward dst stays aligned.
                                assert_eq!((dx as i32 - ax as i32).signum(), ddx.signum());
                                assert_eq!((dy as i32 - ay as i32).signum(), ddy.signum());
                                assert!(p.quadrant_x().is_none());
                            }
                            Some(p) => {
                                let qx = p.quadrant_x().unwrap();
                                let qy = p.quadrant_y().unwrap();
                                assert_eq!((dx as i32 - ax as i32).signum(), qx.delta().0);
                                assert_eq!((dy as i32 - ay as i32).signum(), qy.delta().1);
                            }
                        }
                    }
                }
            }
        }
    }
}
