//! # flov-core — the Fly-Over (FLOV) power-gating mechanism
//!
//! The paper's contribution, built on the `flov-noc` simulator substrate:
//!
//! * [`partition`] — the 8-way destination partitioning of Fig. 4(a);
//! * [`routing`] — the partition-based dynamic routing algorithm (§V) for
//!   regular VCs and the deadlock-free escape sub-network of Fig. 4(b);
//! * [`flov`] — the distributed handshake protocols: restricted FLOV
//!   (rFLOV, §IV-A) and generalized FLOV (gFLOV, §IV-B) driving the
//!   Active/Draining/Sleep/Wakeup router FSM of Fig. 2;
//! * [`rp`] — the Router Parking baseline (centralized Fabric Manager,
//!   reconfiguration stalls, up*/down* tables) the paper compares against.
//!
//! ## Choosing a mechanism
//!
//! ```
//! use flov_core::mechanism;
//! use flov_noc::NocConfig;
//!
//! let cfg = NocConfig::paper_table1();
//! for name in ["Baseline", "rFLOV", "gFLOV", "RP"] {
//!     let mech = mechanism::by_name(name, &cfg).expect("known mechanism");
//!     assert_eq!(mech.name(), name);
//! }
//! ```

pub mod flov;
pub mod nord;
pub mod partition;
pub mod punch;
pub mod routing;
pub mod rp;

pub use flov::{Flov, FlovMode, FlovParams};
pub use nord::Nord;
pub use partition::Partition;
pub use punch::{punch_config, PowerPunch};
pub use rp::{RouterParking, RpMode};

/// Constructors for every mechanism evaluated in the paper.
pub mod mechanism {
    use super::*;
    use flov_noc::baseline::AlwaysOnYx;
    use flov_noc::traits::PowerMechanism;
    use flov_noc::NocConfig;

    /// The four mechanisms of the paper's evaluation, in presentation order.
    pub const ALL: [&str; 4] = ["Baseline", "RP", "rFLOV", "gFLOV"];

    /// Build a mechanism by its paper name. `RP` is the adaptive variant
    /// used in the latency/power sweeps; use [`rp_aggressive`] for the
    /// workload-independent static-power comparison (paper Fig. 9).
    pub fn by_name(name: &str, cfg: &NocConfig) -> Option<Box<dyn PowerMechanism>> {
        Some(match name {
            "Baseline" => Box::new(AlwaysOnYx),
            "rFLOV" => Box::new(Flov::restricted(cfg)),
            "gFLOV" => Box::new(Flov::generalized(cfg)),
            "RP" => Box::new(RouterParking::adaptive(cfg)),
            "RP-aggressive" => Box::new(RouterParking::aggressive(cfg)),
            // NoRD needs the bypass ring: only constructible when the
            // topology admits a Hamiltonian cycle and `cfg.enable_ring` is
            // set (the harness does this; `NocConfig::validate` rejects
            // ring-less topologies with a structured error).
            "NoRD" if cfg.enable_ring => Box::new(Nord::new(cfg)),
            // Power Punch needs escape_vcs = 0 (waiting on a punched wakeup
            // must not divert into the FLOV escape network) — the harness
            // applies `punch_config`.
            "PowerPunch" if cfg.escape_vcs == 0 => Box::new(PowerPunch::new(cfg)),
            _ => return None,
        })
    }

    /// Aggressive Router Parking (Fig. 9 configuration).
    pub fn rp_aggressive(cfg: &NocConfig) -> Box<dyn PowerMechanism> {
        Box::new(RouterParking::aggressive(cfg))
    }
}
