//! Property tests for the `Workload::next_event` horizon contract.
//!
//! The time-skip kernels jump the clock across every cycle *strictly
//! before* the workload's reported horizon without calling it. That is
//! only sound if the horizon never overshoots: whenever a workload does
//! anything observable at cycle `c` — flips a core, raises the changed
//! pulse, emits a packet — the horizon it reported *at* `c` must have
//! been exactly `c` (`next_event(now) >= now` by contract, so an
//! overshoot is `> c` or `None`).
//!
//! The oracle drives each workload one cycle at a time (the reference
//! kernel's view), querying `next_event` *before* touching the workload
//! at each cycle, and checks the claim against what actually happened.
//! Synthetic, MMPP/diurnal-modulated, and trace-replay workloads are all
//! put through the same harness.

use flov_noc::traits::{PacketRequest, Workload};
use flov_workloads::trace::{TraceData, TraceWorkload};
use flov_workloads::{
    Dwell, GatingSchedule, ModulatedWorkload, Pattern, PatternSpace, SyntheticWorkload,
};
use proptest::prelude::*;

/// Drive `w` for `cycles` cycles; panic on any horizon overshoot.
fn check_never_overshoots(mut w: Box<dyn Workload>, nodes: usize, cycles: u64) -> (u64, u64) {
    let mut active = vec![true; nodes];
    let mut out = Vec::new();
    let mut events = 0u64;
    let mut skippable = 0u64;
    for cycle in 0..cycles {
        let horizon = w.next_event(cycle);
        if let Some(h) = horizon {
            assert!(h >= cycle, "next_event({cycle}) returned a past cycle {h}");
        }
        let before = active.clone();
        let changed = w.update_cores(cycle, &mut active);
        out.clear();
        w.generate(cycle, &active, &mut out);
        let observable = changed || !out.is_empty() || active != before;
        if observable {
            events += 1;
            assert_eq!(
                horizon,
                Some(cycle),
                "horizon overshoot: next_event({cycle}) said {horizon:?}, but the \
                 workload acted at {cycle} (changed={changed}, packets={}, flips={})",
                out.len(),
                active.iter().zip(&before).filter(|(a, b)| a != b).count(),
            );
        } else if horizon != Some(cycle) {
            skippable += 1;
        }
    }
    (events, skippable)
}

fn space(k: u16) -> PatternSpace {
    PatternSpace { kx: k, ky: k, c: 1 }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn synthetic_horizon_never_overshoots(
        seed in 0u64..u64::MAX,
        rate_steps in 0u32..30,   // 0.000 .. 0.029 flits/cycle/node
        gated_steps in 0u32..10,
        change in 0u64..2_000,
    ) {
        let k = 4u16;
        let nodes = (k * k) as usize;
        let changes: &[u64] = if change == 0 { &[] } else { &[change] };
        let gating = GatingSchedule::rerandomized_at(
            nodes, gated_steps as f64 / 10.0, seed, changes, &[]);
        let w = SyntheticWorkload::with_space(
            space(k), Pattern::UniformRandom, rate_steps as f64 / 1_000.0,
            4, 2_000, gating, seed ^ 0xABCD);
        check_never_overshoots(Box::new(w), nodes, 2_500);
    }

    #[test]
    fn modulated_horizon_never_overshoots(
        seed in 0u64..u64::MAX,
        quiet_steps in 0u32..3,   // 0.000 .. 0.002 — near-silent phases
        burst_steps in 5u32..40,  // 0.005 .. 0.039
        dwell in 1u64..600,
        fixed in 0u32..2,
    ) {
        let k = 4u16;
        let nodes = (k * k) as usize;
        let gating = GatingSchedule::static_fraction(nodes, 0.3, seed, &[]);
        let rates = vec![quiet_steps as f64 / 1_000.0, burst_steps as f64 / 1_000.0];
        let dwell =
            if fixed == 0 { Dwell::Fixed { cycles: dwell } } else { Dwell::Geometric { mean: dwell } };
        let w = ModulatedWorkload::new(
            space(k), Pattern::UniformRandom, rates, dwell, 4, 2_000, gating, seed);
        let (_, skippable) = check_never_overshoots(Box::new(w), nodes, 2_500);
        // Near-silent phases must actually advertise skippable cycles,
        // or MMPP runs would defeat the time-skip kernel entirely.
        prop_assert!(skippable > 0, "modulated workload never offered a skip window");
    }

    #[test]
    fn trace_horizon_never_overshoots(
        seed in 0u64..u64::MAX,
        n_packets in 0usize..60,
        n_core in 0usize..20,
        n_changed in 0usize..10,
        span in 100u64..2_000,
    ) {
        // Deterministic pseudo-random trace content from the seed (the
        // shim's proptest collections would do, but a splitmix keeps the
        // inputs compact and shrinkable by count).
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let nodes = 16usize;
        let mut data = TraceData::default();
        for _ in 0..n_packets {
            let src = (next() % nodes as u64) as u16;
            let dst = (next() % nodes as u64) as u16;
            data.packets.push((next() % span, PacketRequest {
                src, dst, vnet: (next() % 3) as u8, len: 1 + (next() % 8) as u16,
            }));
        }
        for _ in 0..n_core {
            data.core_events.push((next() % span, (next() % nodes as u64) as u16, next() % 2 == 0));
        }
        for _ in 0..n_changed {
            data.changed_cycles.push(next() % span);
        }
        data.sort();
        let w = TraceWorkload::new(data);
        let (events, _) = check_never_overshoots(Box::new(w), nodes, span + 50);
        // Sanity: a non-empty trace must produce observable activity.
        if n_packets + n_core + n_changed > 0 {
            prop_assert!(events > 0, "trace produced no observable events");
        }
    }
}
