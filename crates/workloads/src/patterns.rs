//! Synthetic traffic patterns (BookSim-compatible definitions).

use flov_noc::rng::Rng;
use flov_noc::types::{Coord, NodeId};
use serde::{Deserialize, Serialize};

/// A spatial traffic pattern: maps a source to a destination.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Pattern {
    /// Uniformly random destination (re-drawn among active nodes).
    UniformRandom,
    /// `dst = ((x + ceil(k/2) - 1) mod k, y)`: every node sends almost half
    /// way around its row — the paper's second synthetic workload.
    Tornado,
    /// `dst = (y, x)`.
    Transpose,
    /// `dst = (k*k - 1) - src`.
    BitComplement,
    /// `dst = ((x + 1) mod k, y)`.
    Neighbor,
    /// With probability `p_hot` (percent) the destination is `hotspot`;
    /// otherwise uniform random.
    Hotspot { hotspot: NodeId, p_hot_pct: u8 },
}

impl Pattern {
    /// Compute the destination for `src` in a `k x k` mesh. Deterministic
    /// patterns ignore `rng`. May return `src` itself (callers skip those).
    pub fn dest(&self, src: NodeId, k: u16, rng: &mut Rng) -> NodeId {
        let n = k as u64 * k as u64;
        let c = Coord::of(src, k);
        match *self {
            Pattern::UniformRandom => rng.below(n) as NodeId,
            Pattern::Tornado => {
                let shift = k.div_ceil(2) - 1;
                Coord::new((c.x + shift) % k, c.y).id(k)
            }
            Pattern::Transpose => Coord::new(c.y, c.x).id(k),
            Pattern::BitComplement => (n - 1) as NodeId - src,
            Pattern::Neighbor => Coord::new((c.x + 1) % k, c.y).id(k),
            Pattern::Hotspot { hotspot, p_hot_pct } => {
                if rng.below(100) < p_hot_pct as u64 {
                    hotspot
                } else {
                    rng.below(n) as NodeId
                }
            }
        }
    }

    /// Short name for result tables.
    pub fn name(&self) -> &'static str {
        match self {
            Pattern::UniformRandom => "uniform",
            Pattern::Tornado => "tornado",
            Pattern::Transpose => "transpose",
            Pattern::BitComplement => "bitcomp",
            Pattern::Neighbor => "neighbor",
            Pattern::Hotspot { .. } => "hotspot",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tornado_is_same_row_half_way() {
        let k = 8;
        let mut rng = Rng::new(1);
        for src in 0..64u16 {
            let d = Pattern::Tornado.dest(src, k, &mut rng);
            assert_eq!(d / k, src / k, "tornado left its row");
            assert_eq!(d % k, (src % k + 3) % k); // ceil(8/2)-1 = 3
        }
    }

    #[test]
    fn transpose_is_involution() {
        let k = 8;
        let mut rng = Rng::new(1);
        for src in 0..64u16 {
            let d = Pattern::Transpose.dest(src, k, &mut rng);
            assert_eq!(Pattern::Transpose.dest(d, k, &mut rng), src);
        }
    }

    #[test]
    fn bit_complement_is_involution() {
        let k = 8;
        let mut rng = Rng::new(1);
        for src in 0..64u16 {
            let d = Pattern::BitComplement.dest(src, k, &mut rng);
            assert_eq!(Pattern::BitComplement.dest(d, k, &mut rng), src);
        }
    }

    #[test]
    fn uniform_covers_the_mesh() {
        let mut rng = Rng::new(7);
        let mut seen = [false; 16];
        for _ in 0..2000 {
            seen[Pattern::UniformRandom.dest(0, 4, &mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn hotspot_concentrates() {
        let mut rng = Rng::new(3);
        let p = Pattern::Hotspot { hotspot: 5, p_hot_pct: 50 };
        let hits = (0..4000).filter(|_| p.dest(0, 8, &mut rng) == 5).count();
        assert!(hits > 1500 && hits < 2500, "hotspot hits {hits}");
    }

    #[test]
    fn neighbor_wraps() {
        let mut rng = Rng::new(1);
        assert_eq!(Pattern::Neighbor.dest(7, 8, &mut rng), 0); // (7,0) -> (0,0)
        assert_eq!(Pattern::Neighbor.dest(0, 8, &mut rng), 1);
    }
}
