//! Synthetic traffic patterns (BookSim-compatible definitions).

use flov_noc::rng::Rng;
use flov_noc::types::{Coord, NodeId};
use serde::{Deserialize, Serialize};

/// The coordinate space a pattern operates over: a `kx x ky` router grid
/// with `c` cores concentrated on each router. Sources and destinations are
/// *core* ids; spatial patterns act on the router coordinates and preserve
/// the core slot within the router.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PatternSpace {
    pub kx: u16,
    pub ky: u16,
    /// Cores per router (1 for a plain mesh).
    pub c: u16,
}

impl PatternSpace {
    /// The classic square `k x k` mesh with one core per router.
    pub fn square(k: u16) -> PatternSpace {
        PatternSpace { kx: k, ky: k, c: 1 }
    }

    /// Total number of cores (pattern endpoints).
    pub fn cores(&self) -> u64 {
        self.kx as u64 * self.ky as u64 * self.c as u64
    }

    /// Router grid coordinate of a core.
    fn coord(&self, core: NodeId) -> Coord {
        let router = core / self.c;
        Coord { x: router % self.kx, y: router / self.kx }
    }

    /// Core id at a router coordinate, keeping `src`'s slot.
    fn core_at(&self, coord: Coord, src: NodeId) -> NodeId {
        (coord.y * self.kx + coord.x) * self.c + src % self.c
    }
}

/// A spatial traffic pattern: maps a source to a destination.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Pattern {
    /// Uniformly random destination (re-drawn among active nodes).
    UniformRandom,
    /// `dst = ((x + ceil(k/2) - 1) mod k, y)`: every node sends almost half
    /// way around its row — the paper's second synthetic workload.
    Tornado,
    /// `dst = (y, x)`.
    Transpose,
    /// `dst = (k*k - 1) - src`.
    BitComplement,
    /// `dst = ((x + 1) mod k, y)`.
    Neighbor,
    /// With probability `p_hot` (percent) the destination is `hotspot`;
    /// otherwise uniform random.
    Hotspot { hotspot: NodeId, p_hot_pct: u8 },
}

impl Pattern {
    /// Compute the destination for `src` in a `k x k` mesh. Deterministic
    /// patterns ignore `rng`. May return `src` itself (callers skip those).
    pub fn dest(&self, src: NodeId, k: u16, rng: &mut Rng) -> NodeId {
        self.dest_in(src, PatternSpace::square(k), rng)
    }

    /// Compute the destination for core `src` in an arbitrary pattern space.
    /// For `PatternSpace::square(k)` this draws the exact same RNG stream as
    /// the historical `k x k` form.
    pub fn dest_in(&self, src: NodeId, space: PatternSpace, rng: &mut Rng) -> NodeId {
        let n = space.cores();
        let c = space.coord(src);
        match *self {
            Pattern::UniformRandom => rng.below(n) as NodeId,
            Pattern::Tornado => {
                let shift = space.kx.div_ceil(2) - 1;
                space.core_at(Coord::new((c.x + shift) % space.kx, c.y), src)
            }
            Pattern::Transpose => {
                // Swapping router coordinates needs a square grid; on a
                // rectangular one the pair has no partner and stays silent
                // (callers skip self-sends).
                if space.kx == space.ky {
                    space.core_at(Coord::new(c.y, c.x), src)
                } else {
                    src
                }
            }
            Pattern::BitComplement => (n - 1) as NodeId - src,
            Pattern::Neighbor => space.core_at(Coord::new((c.x + 1) % space.kx, c.y), src),
            Pattern::Hotspot { hotspot, p_hot_pct } => {
                if rng.below(100) < p_hot_pct as u64 {
                    hotspot
                } else {
                    rng.below(n) as NodeId
                }
            }
        }
    }

    /// Short name for result tables.
    pub fn name(&self) -> &'static str {
        match self {
            Pattern::UniformRandom => "uniform",
            Pattern::Tornado => "tornado",
            Pattern::Transpose => "transpose",
            Pattern::BitComplement => "bitcomp",
            Pattern::Neighbor => "neighbor",
            Pattern::Hotspot { .. } => "hotspot",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tornado_is_same_row_half_way() {
        let k = 8;
        let mut rng = Rng::new(1);
        for src in 0..64u16 {
            let d = Pattern::Tornado.dest(src, k, &mut rng);
            assert_eq!(d / k, src / k, "tornado left its row");
            assert_eq!(d % k, (src % k + 3) % k); // ceil(8/2)-1 = 3
        }
    }

    #[test]
    fn transpose_is_involution() {
        let k = 8;
        let mut rng = Rng::new(1);
        for src in 0..64u16 {
            let d = Pattern::Transpose.dest(src, k, &mut rng);
            assert_eq!(Pattern::Transpose.dest(d, k, &mut rng), src);
        }
    }

    #[test]
    fn bit_complement_is_involution() {
        let k = 8;
        let mut rng = Rng::new(1);
        for src in 0..64u16 {
            let d = Pattern::BitComplement.dest(src, k, &mut rng);
            assert_eq!(Pattern::BitComplement.dest(d, k, &mut rng), src);
        }
    }

    #[test]
    fn uniform_covers_the_mesh() {
        let mut rng = Rng::new(7);
        let mut seen = [false; 16];
        for _ in 0..2000 {
            seen[Pattern::UniformRandom.dest(0, 4, &mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn hotspot_concentrates() {
        let mut rng = Rng::new(3);
        let p = Pattern::Hotspot { hotspot: 5, p_hot_pct: 50 };
        let hits = (0..4000).filter(|_| p.dest(0, 8, &mut rng) == 5).count();
        assert!(hits > 1500 && hits < 2500, "hotspot hits {hits}");
    }

    #[test]
    fn neighbor_wraps() {
        let mut rng = Rng::new(1);
        assert_eq!(Pattern::Neighbor.dest(7, 8, &mut rng), 0); // (7,0) -> (0,0)
        assert_eq!(Pattern::Neighbor.dest(0, 8, &mut rng), 1);
    }

    #[test]
    fn square_space_matches_legacy_form() {
        // Same seed, same draw stream, same destinations.
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        let space = PatternSpace::square(8);
        for src in 0..64u16 {
            for p in [
                Pattern::UniformRandom,
                Pattern::Tornado,
                Pattern::Transpose,
                Pattern::BitComplement,
                Pattern::Neighbor,
                Pattern::Hotspot { hotspot: 9, p_hot_pct: 30 },
            ] {
                assert_eq!(p.dest(src, 8, &mut a), p.dest_in(src, space, &mut b));
            }
        }
    }

    #[test]
    fn concentrated_patterns_preserve_the_core_slot() {
        // CMesh 4x4 with c=4 (the 64-core config): tornado/transpose act on
        // router coordinates and keep the sender's slot.
        let mut rng = Rng::new(1);
        let space = PatternSpace { kx: 4, ky: 4, c: 4 };
        for src in 0..64u16 {
            let d = Pattern::Tornado.dest_in(src, space, &mut rng);
            assert_eq!(d % 4, src % 4, "tornado changed the core slot");
            assert_eq!((d / 4) / 4, (src / 4) / 4, "tornado left its router row");
            let t = Pattern::Transpose.dest_in(src, space, &mut rng);
            assert_eq!(Pattern::Transpose.dest_in(t, space, &mut rng), src);
            let b = Pattern::BitComplement.dest_in(src, space, &mut rng);
            assert_eq!(b, 63 - src);
        }
    }

    #[test]
    fn rectangular_space_stays_in_bounds() {
        let mut rng = Rng::new(5);
        let space = PatternSpace { kx: 6, ky: 3, c: 1 };
        let n = space.cores() as u16;
        for src in 0..n {
            for p in [
                Pattern::UniformRandom,
                Pattern::Tornado,
                Pattern::Transpose,
                Pattern::BitComplement,
                Pattern::Neighbor,
            ] {
                let d = p.dest_in(src, space, &mut rng);
                assert!(d < n, "{p:?} escaped the 6x3 grid: {src} -> {d}");
            }
            // Transpose has no partner off the square diagonal.
            assert_eq!(Pattern::Transpose.dest_in(src, space, &mut rng), src);
            // Tornado stays in the router row.
            let t = Pattern::Tornado.dest_in(src, space, &mut rng);
            assert_eq!(t / 6, src / 6);
        }
    }
}
