//! Synthetic full-system traffic modeled on PARSEC 2.1 running on a 64-core
//! CMP — the substitution for gem5 documented in DESIGN.md §2.
//!
//! What the NoC sees from a real PARSEC run, and what this module
//! reproduces:
//!
//! * a benchmark uses `threads < 64` cores; the OS consolidates threads and
//!   power-gates the idle cores — the premise of both FLOV and RP;
//! * thread migration / phase behavior re-shuffles *which* cores are idle
//!   every `phase_interval` cycles (this is what forces RP reconfigurations);
//! * coherence traffic runs on three virtual networks (request / response /
//!   coherence-control) with a bimodal size mix: 1-flit control packets and
//!   5-flit cache-line data packets (64 B line + header over 16 B flits);
//! * a `mem_fraction` of requests target the four memory controllers at the
//!   mesh corners; the rest is core-to-core coherence;
//! * each benchmark has a fixed amount of *work* (packets); a run finishes
//!   when all of it is delivered, so runtime differences between mechanisms
//!   translate into the paper's performance-degradation numbers.

use flov_noc::rng::Rng;
use flov_noc::traits::{PacketRequest, Workload};
use flov_noc::types::{Coord, Cycle, NodeId};
use serde::{Deserialize, Serialize};

/// Profile of one benchmark: the knobs that matter to the interconnect.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BenchProfile {
    pub name: &'static str,
    /// Worker threads, i.e. active cores (the rest are gated).
    pub threads: u16,
    /// Packet-generation probability per active core per cycle.
    pub inj_rate: f64,
    /// Fraction of request traffic aimed at the memory controllers.
    pub mem_fraction: f64,
    /// Cycles between idle-set re-shuffles (thread migration events).
    pub phase_interval: Cycle,
    /// Total packets of work.
    pub work_packets: u64,
}

/// The nine PARSEC 2.1 benchmarks used in the paper's evaluation, with
/// synthetic-but-representative interconnect profiles (communication
/// intensity ordered per the PARSEC characterization: canneal and
/// fluidanimate communication-heavy, swaptions/blackscholes compute-bound).
pub const PARSEC_BENCHMARKS: [BenchProfile; 9] = [
    BenchProfile {
        name: "blackscholes",
        threads: 16,
        inj_rate: 0.008,
        mem_fraction: 0.70,
        phase_interval: 20_000,
        work_packets: 12_000,
    },
    BenchProfile {
        name: "bodytrack",
        threads: 24,
        inj_rate: 0.016,
        mem_fraction: 0.60,
        phase_interval: 12_000,
        work_packets: 20_000,
    },
    BenchProfile {
        name: "canneal",
        threads: 20,
        inj_rate: 0.028,
        mem_fraction: 0.80,
        phase_interval: 15_000,
        work_packets: 30_000,
    },
    BenchProfile {
        name: "dedup",
        threads: 28,
        inj_rate: 0.018,
        mem_fraction: 0.50,
        phase_interval: 9_000,
        work_packets: 24_000,
    },
    BenchProfile {
        name: "ferret",
        threads: 24,
        inj_rate: 0.018,
        mem_fraction: 0.50,
        phase_interval: 10_000,
        work_packets: 22_000,
    },
    BenchProfile {
        name: "fluidanimate",
        threads: 32,
        inj_rate: 0.022,
        mem_fraction: 0.60,
        phase_interval: 12_000,
        work_packets: 28_000,
    },
    BenchProfile {
        name: "swaptions",
        threads: 16,
        inj_rate: 0.006,
        mem_fraction: 0.40,
        phase_interval: 25_000,
        work_packets: 10_000,
    },
    BenchProfile {
        name: "vips",
        threads: 24,
        inj_rate: 0.016,
        mem_fraction: 0.55,
        phase_interval: 12_000,
        work_packets: 20_000,
    },
    BenchProfile {
        name: "x264",
        threads: 28,
        inj_rate: 0.020,
        mem_fraction: 0.50,
        phase_interval: 8_000,
        work_packets: 24_000,
    },
];

/// Look up a profile by name.
pub fn benchmark(name: &str) -> Option<BenchProfile> {
    PARSEC_BENCHMARKS.iter().copied().find(|b| b.name == name)
}

/// Memory-controller nodes: the four mesh corners (Table I: "4 MCs at 4
/// corners").
pub fn memory_controllers(k: u16) -> [NodeId; 4] {
    [
        Coord::new(0, 0).id(k),
        Coord::new(k - 1, 0).id(k),
        Coord::new(0, k - 1).id(k),
        Coord::new(k - 1, k - 1).id(k),
    ]
}

/// Virtual networks of the coherence protocol.
pub const VNET_REQUEST: u8 = 0;
pub const VNET_RESPONSE: u8 = 1;
pub const VNET_CONTROL: u8 = 2;

/// Control packets are one flit; data packets carry a 64 B cache line
/// (+ header) over 16 B flits.
pub const CONTROL_LEN: u16 = 1;
pub const DATA_LEN: u16 = 5;

/// The PARSEC-proxy workload.
pub struct ParsecWorkload {
    pub profile: BenchProfile,
    #[allow(dead_code)]
    k: u16,
    rng: Rng,
    generated: u64,
    next_phase: Cycle,
    active_set: Vec<NodeId>,
    mcs: [NodeId; 4],
    /// Response traffic scheduled for future cycles (a data reply follows
    /// each request after a modeled service latency).
    pending_replies: std::collections::BinaryHeap<std::cmp::Reverse<(Cycle, NodeId, NodeId)>>,
    /// Closed-loop throttle: packets still in flight (from feedback).
    in_flight: u64,
    /// Maximum outstanding packets before generation pauses — the aggregate
    /// MSHR/MLP limit of the active cores. This is what converts network
    /// stalls (e.g. RP reconfiguration) into lost execution time.
    pub max_outstanding: u64,
}

impl ParsecWorkload {
    pub fn new(k: u16, profile: BenchProfile, seed: u64) -> ParsecWorkload {
        assert!(profile.threads as usize <= (k as usize) * (k as usize));
        ParsecWorkload {
            profile,
            k,
            rng: Rng::new(seed ^ 0x9A85EC),
            generated: 0,
            next_phase: 0,
            active_set: Vec::new(),
            mcs: memory_controllers(k),
            pending_replies: std::collections::BinaryHeap::new(),
            in_flight: 0,
            // ~8 outstanding packets per thread (a few MSHRs' worth of
            // request+reply traffic).
            max_outstanding: profile.threads as u64 * 8,
        }
    }

    /// Choose which cores run threads this phase: MCs always on, plus a
    /// random consolidated set of `threads` cores.
    fn reshuffle(&mut self, active: &mut [bool]) {
        let n = active.len();
        let mut cores: Vec<NodeId> = (0..n as NodeId).filter(|c| !self.mcs.contains(c)).collect();
        self.rng.shuffle(&mut cores);
        let want = (self.profile.threads as usize).min(cores.len());
        active.iter_mut().for_each(|a| *a = false);
        for &mc in &self.mcs {
            active[mc as usize] = true;
        }
        self.active_set.clear();
        for &c in cores.iter().take(want) {
            active[c as usize] = true;
            self.active_set.push(c);
        }
        self.active_set.sort_unstable();
    }

    /// True once all work has been generated.
    pub fn all_generated(&self) -> bool {
        self.generated >= self.profile.work_packets
    }
}

impl Workload for ParsecWorkload {
    fn update_cores(&mut self, cycle: Cycle, active: &mut [bool]) -> bool {
        if cycle >= self.next_phase && !self.all_generated() {
            self.reshuffle(active);
            self.next_phase = cycle + self.profile.phase_interval;
            true
        } else {
            false
        }
    }

    fn generate(&mut self, cycle: Cycle, _active: &[bool], out: &mut Vec<PacketRequest>) {
        // Release due replies first (they count toward the work budget,
        // already reserved at request time).
        while let Some(&std::cmp::Reverse((due, src, dst))) = self.pending_replies.peek() {
            if due > cycle {
                break;
            }
            self.pending_replies.pop();
            out.push(PacketRequest { src, dst, vnet: VNET_RESPONSE, len: DATA_LEN });
        }
        if self.all_generated() || self.active_set.is_empty() {
            return;
        }
        // Closed loop: cores stall once too many misses are outstanding.
        if self.in_flight >= self.max_outstanding {
            return;
        }
        for i in 0..self.active_set.len() {
            let src = self.active_set[i];
            if !self.rng.chance(self.profile.inj_rate) {
                continue;
            }
            if self.all_generated() {
                break;
            }
            let to_mem = self.rng.chance(self.profile.mem_fraction);
            let target = if to_mem {
                // Memory interleaving: a random MC.
                self.mcs[self.rng.below(4) as usize]
            } else {
                // Coherence: another active core (or a control message).
                if self.active_set.len() < 2 {
                    continue;
                }
                loop {
                    let d = *self.rng.pick(&self.active_set);
                    if d != src {
                        break d;
                    }
                }
            };
            // Request now; data response after a service latency.
            out.push(PacketRequest { src, dst: target, vnet: VNET_REQUEST, len: CONTROL_LEN });
            let service = 30 + self.rng.below(60);
            self.pending_replies.push(std::cmp::Reverse((cycle + service, target, src)));
            self.generated += 2;
            // Occasionally a third-party coherence control message
            // (invalidation / ack) rides the control vnet.
            if !to_mem && self.generated < self.profile.work_packets && self.rng.chance(0.5) {
                out.push(PacketRequest {
                    src: target,
                    dst: src,
                    vnet: VNET_CONTROL,
                    len: CONTROL_LEN,
                });
                self.generated += 1;
            }
        }
    }

    fn set_feedback(&mut self, _delivered: u64, in_flight: u64) {
        self.in_flight = in_flight;
    }

    fn done(&self, delivered_packets: u64) -> bool {
        self.all_generated()
            && self.pending_replies.is_empty()
            && delivered_packets >= self.generated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_benchmarks_defined() {
        assert_eq!(PARSEC_BENCHMARKS.len(), 9);
        let mut names: Vec<&str> = PARSEC_BENCHMARKS.iter().map(|b| b.name).collect();
        names.dedup();
        assert_eq!(names.len(), 9);
        assert!(benchmark("canneal").is_some());
        assert!(benchmark("nonexistent").is_none());
    }

    #[test]
    fn mcs_are_corners() {
        assert_eq!(memory_controllers(8), [0, 7, 56, 63]);
    }

    #[test]
    fn thread_count_respected_and_mcs_always_on() {
        let prof = benchmark("blackscholes").unwrap();
        let mut w = ParsecWorkload::new(8, prof, 1);
        let mut active = vec![true; 64];
        assert!(w.update_cores(0, &mut active));
        let on = active.iter().filter(|&&a| a).count();
        // threads + up to 4 MCs (MCs are not thread hosts).
        assert_eq!(on, prof.threads as usize + 4);
        for mc in memory_controllers(8) {
            assert!(active[mc as usize]);
        }
    }

    #[test]
    fn phases_reshuffle_idle_set() {
        let prof = benchmark("x264").unwrap();
        let mut w = ParsecWorkload::new(8, prof, 3);
        let mut active = vec![true; 64];
        w.update_cores(0, &mut active);
        let first = active.clone();
        assert!(!w.update_cores(prof.phase_interval - 1, &mut active));
        assert!(w.update_cores(prof.phase_interval, &mut active));
        assert_ne!(active, first, "phase change did not reshuffle");
        assert_eq!(active.iter().filter(|&&a| a).count(), first.iter().filter(|&&a| a).count());
    }

    #[test]
    fn work_budget_is_finite_and_respected() {
        let prof = BenchProfile { work_packets: 500, ..benchmark("canneal").unwrap() };
        let mut w = ParsecWorkload::new(8, prof, 7);
        let mut active = vec![true; 64];
        let mut out = Vec::new();
        let mut total = 0u64;
        for c in 0..200_000 {
            w.update_cores(c, &mut active);
            out.clear();
            w.generate(c, &active, &mut out);
            total += out.len() as u64;
            if w.all_generated() && w.pending_replies.is_empty() {
                break;
            }
        }
        // The budget may overshoot by at most one transaction (3 packets).
        assert!(total <= 503, "{total} packets generated");
        assert!(total >= 500, "only {total} packets generated");
        assert!(w.done(total));
    }

    #[test]
    fn traffic_classes_are_well_formed() {
        let prof = benchmark("dedup").unwrap();
        let mut w = ParsecWorkload::new(8, prof, 11);
        let mut active = vec![true; 64];
        let mut out = Vec::new();
        for c in 0..20_000 {
            w.update_cores(c, &mut active);
            w.generate(c, &active, &mut out);
        }
        assert!(out.len() > 100);
        let mut saw = [false; 3];
        for p in &out {
            saw[p.vnet as usize] = true;
            match p.vnet {
                VNET_REQUEST | VNET_CONTROL => assert_eq!(p.len, CONTROL_LEN),
                VNET_RESPONSE => assert_eq!(p.len, DATA_LEN),
                _ => panic!("unknown vnet"),
            }
            assert_ne!(p.src, p.dst);
        }
        assert!(saw.iter().all(|&s| s), "not all vnets exercised: {saw:?}");
        // A healthy share of traffic touches the MCs.
        let mcs = memory_controllers(8);
        let mem = out.iter().filter(|p| mcs.contains(&p.src) || mcs.contains(&p.dst)).count();
        assert!(mem as f64 > out.len() as f64 * 0.3);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let prof = benchmark("vips").unwrap();
            let mut w = ParsecWorkload::new(8, prof, seed);
            let mut active = vec![true; 64];
            let mut out = Vec::new();
            for c in 0..5_000 {
                w.update_cores(c, &mut active);
                w.generate(c, &active, &mut out);
            }
            out
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}
