//! The synthetic workload of the paper's §VI-B: Bernoulli packet injection
//! at a fixed rate (flits/cycle/node) from every *active* core, over a
//! spatial pattern, with a core-gating scenario.
//!
//! Injection times are drawn as geometric inter-arrival gaps (the gap
//! distribution of per-cycle Bernoulli trials), so each node carries a
//! precomputed next-injection cycle: generation costs O(arrivals) instead
//! of O(cycles × nodes), and the cached minimum gives the simulator an
//! exact next-event horizon for time-domain skipping.

use crate::gating::GatingSchedule;
use crate::patterns::{Pattern, PatternSpace};
use flov_noc::rng::Rng;
use flov_noc::traits::{PacketRequest, Workload};
use flov_noc::types::{Cycle, NodeId};

/// "Never injects" sentinel for `next_inject` (inactive node or zero rate).
const NEVER: Cycle = Cycle::MAX;

/// Synthetic traffic generator.
pub struct SyntheticWorkload {
    pub pattern: Pattern,
    /// Injection rate in flits/cycle/node (per *active* node; total offered
    /// load scales with the active fraction, as in the paper).
    pub rate: f64,
    /// Flits per packet (Table I: 4).
    pub pkt_len: u16,
    /// Virtual network used for synthetic traffic.
    pub vnet: u8,
    /// Stop generating at this cycle (the run then drains).
    pub stop_at: Cycle,
    gating: GatingSchedule,
    rng: Rng,
    space: PatternSpace,
    active_cache: Vec<NodeId>,
    cache_dirty: bool,
    /// Per-node precomputed injection cycle; `NEVER` while inactive. A
    /// node's pending arrival is discarded when it gates and resampled
    /// fresh when it re-activates (memorylessness makes the process
    /// identical to per-cycle trials).
    next_inject: Vec<Cycle>,
    /// Cached `min(next_inject)` — the O(1) idle-cycle early-out and the
    /// injection half of the next-event horizon. Valid when `!cache_dirty`.
    min_next: Cycle,
}

impl SyntheticWorkload {
    pub fn new(
        k: u16,
        pattern: Pattern,
        rate: f64,
        pkt_len: u16,
        stop_at: Cycle,
        gating: GatingSchedule,
        seed: u64,
    ) -> SyntheticWorkload {
        Self::with_space(PatternSpace::square(k), pattern, rate, pkt_len, stop_at, gating, seed)
    }

    /// Generator over an arbitrary pattern space (rectangular, concentrated).
    /// `PatternSpace::square(k)` reproduces `new` exactly, draw for draw.
    pub fn with_space(
        space: PatternSpace,
        pattern: Pattern,
        rate: f64,
        pkt_len: u16,
        stop_at: Cycle,
        gating: GatingSchedule,
        seed: u64,
    ) -> SyntheticWorkload {
        SyntheticWorkload {
            pattern,
            rate,
            pkt_len,
            vnet: 0,
            stop_at,
            gating,
            rng: Rng::new(seed),
            space,
            active_cache: Vec::new(),
            cache_dirty: true,
            next_inject: Vec::new(),
            min_next: NEVER,
        }
    }

    /// Packet probability per node-cycle.
    fn p(&self) -> f64 {
        (self.rate / self.pkt_len as f64).min(1.0)
    }

    /// Switch the injection rate mid-run (the MMPP/diurnal modulators).
    /// Every pending arrival is discarded and every active node resampled
    /// at the next `generate` call — the geometric gap is memoryless, so
    /// discard-and-resample is distributionally exact, and the refresh
    /// redraws in ascending node order, keeping the draw sequence
    /// deterministic across kernels.
    pub fn set_rate(&mut self, rate: f64) {
        self.rate = rate;
        for slot in &mut self.next_inject {
            *slot = NEVER;
        }
        self.min_next = NEVER;
        self.cache_dirty = true;
    }

    /// Rebuild the active list after a gating change: newly active nodes
    /// (in ascending id order, for a deterministic draw sequence) get a
    /// fresh arrival starting at `cycle`; surviving nodes keep theirs;
    /// gated nodes forget theirs.
    fn refresh_cache(&mut self, cycle: Cycle, active: &[bool]) {
        self.next_inject.resize(active.len(), NEVER);
        self.active_cache.clear();
        let p = self.p();
        let mut min_next = NEVER;
        for (n, &is_active) in active.iter().enumerate() {
            if is_active {
                self.active_cache.push(n as NodeId);
                if self.next_inject[n] == NEVER && p > 0.0 {
                    // Saturating: a huge gap (tiny p near the end of time)
                    // degrades to the NEVER sentinel instead of wrapping
                    // into a time-travel arrival.
                    self.next_inject[n] = cycle.saturating_add(self.rng.geometric0(p));
                }
            } else {
                self.next_inject[n] = NEVER;
            }
            min_next = min_next.min(self.next_inject[n]);
        }
        self.min_next = min_next;
        self.cache_dirty = false;
    }
}

impl Workload for SyntheticWorkload {
    fn update_cores(&mut self, cycle: Cycle, active: &mut [bool]) -> bool {
        let changed = self.gating.apply(cycle, active);
        if changed {
            self.cache_dirty = true;
        }
        changed
    }

    fn generate(&mut self, cycle: Cycle, active: &[bool], out: &mut Vec<PacketRequest>) {
        if cycle >= self.stop_at {
            return;
        }
        if self.cache_dirty {
            self.refresh_cache(cycle, active);
        }
        if self.min_next > cycle {
            return;
        }
        let p = self.p();
        let space = self.space;
        let mut min_next = NEVER;
        for i in 0..self.active_cache.len() {
            let src = self.active_cache[i];
            let due = self.next_inject[src as usize];
            if due > cycle {
                min_next = min_next.min(due);
                continue;
            }
            debug_assert_eq!(due, cycle, "missed injection for node {src}");
            // The next trial is at cycle+1: at most one packet/node/cycle,
            // exactly like the per-cycle Bernoulli draw this replaces. A
            // zero rate has no next trial (`geometric0` rejects p == 0, and
            // in release it would spin sampling a divergent geometric).
            // Saturating adds: a gap overshooting `Cycle::MAX` (tiny p, the
            // MMPP slow states) means NEVER, not a wrapped past cycle.
            self.next_inject[src as usize] = if p > 0.0 {
                cycle.saturating_add(1).saturating_add(self.rng.geometric0(p))
            } else {
                NEVER
            };
            min_next = min_next.min(self.next_inject[src as usize]);
            let dst = match self.pattern {
                Pattern::UniformRandom => {
                    // Uniform over the *other active* nodes.
                    if self.active_cache.len() < 2 {
                        continue;
                    }
                    loop {
                        let d = *self.rng.pick(&self.active_cache);
                        if d != src {
                            break d;
                        }
                    }
                }
                _ => {
                    let d = self.pattern.dest_in(src, space, &mut self.rng);
                    // Deterministic patterns: if the partner is gated (or
                    // self), the pair does not communicate this cycle.
                    if d == src || !active[d as usize] {
                        continue;
                    }
                    d
                }
            };
            out.push(PacketRequest { src, dst, vnet: self.vnet, len: self.pkt_len });
        }
        self.min_next = min_next;
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        // Unapplied gating state (including the initial event at cycle 0)
        // must be materialized by a real step before horizons mean anything.
        if self.cache_dirty {
            return Some(now);
        }
        let inject = if now < self.stop_at && self.min_next < self.stop_at {
            Some(self.min_next.max(now))
        } else {
            None
        };
        match (inject, self.gating.next_change()) {
            (Some(a), Some(b)) => Some(a.min(b.max(now))),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b.max(now)),
            (None, None) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen_packets(w: &mut SyntheticWorkload, nodes: usize, cycles: u64) -> Vec<PacketRequest> {
        let mut active = vec![true; nodes];
        let mut out = Vec::new();
        for c in 0..cycles {
            w.update_cores(c, &mut active);
            w.generate(c, &active, &mut out);
        }
        out
    }

    #[test]
    fn rate_is_respected() {
        let mut w = SyntheticWorkload::new(
            8,
            Pattern::UniformRandom,
            0.08,
            4,
            u64::MAX,
            GatingSchedule::none(),
            1,
        );
        let out = gen_packets(&mut w, 64, 10_000);
        // Expected flits = 0.08 * 64 nodes * 10_000 cycles = 51_200.
        let flits: u64 = out.iter().map(|p| p.len as u64).sum();
        let expect = 51_200.0;
        assert!((flits as f64 - expect).abs() < expect * 0.05, "flits {flits} vs {expect}");
    }

    #[test]
    fn gated_cores_neither_send_nor_receive() {
        let mut w = SyntheticWorkload::new(
            8,
            Pattern::UniformRandom,
            0.1,
            4,
            u64::MAX,
            GatingSchedule::static_fraction(64, 0.5, 3, &[]),
            1,
        );
        let mut active = vec![true; 64];
        let mut out = Vec::new();
        for c in 0..2_000 {
            w.update_cores(c, &mut active);
            w.generate(c, &active, &mut out);
        }
        assert!(!out.is_empty());
        for p in &out {
            assert!(active[p.src as usize], "gated source {}", p.src);
            assert!(active[p.dst as usize], "gated destination {}", p.dst);
            assert_ne!(p.src, p.dst);
        }
    }

    #[test]
    fn tornado_pairs_skip_gated_partners() {
        let mut w = SyntheticWorkload::new(
            8,
            Pattern::Tornado,
            0.5,
            4,
            u64::MAX,
            GatingSchedule::static_fraction(64, 0.4, 5, &[]),
            2,
        );
        let mut active = vec![true; 64];
        let mut out = Vec::new();
        for c in 0..1_000 {
            w.update_cores(c, &mut active);
            w.generate(c, &active, &mut out);
        }
        for p in &out {
            assert!(active[p.src as usize] && active[p.dst as usize]);
            assert_eq!(p.dst / 8, p.src / 8, "tornado pair left its row");
        }
    }

    #[test]
    fn generation_stops_at_stop_cycle() {
        let mut w = SyntheticWorkload::new(
            4,
            Pattern::UniformRandom,
            1.0,
            4,
            100,
            GatingSchedule::none(),
            1,
        );
        let mut active = vec![true; 16];
        let mut out = Vec::new();
        for c in 0..100 {
            w.generate(c, &active, &mut out);
        }
        let n_before = out.len();
        assert!(n_before > 0);
        for c in 100..200 {
            w.update_cores(c, &mut active);
            w.generate(c, &active, &mut out);
        }
        assert_eq!(out.len(), n_before);
    }

    #[test]
    fn zero_rate_never_injects() {
        // rate == 0.0 used to reach `Rng::geometric0(0.0)` through the
        // resample in `generate`, tripping its debug_assert (and spinning
        // on a divergent geometric in release). It must mean "never".
        let mut w = SyntheticWorkload::new(
            4,
            Pattern::UniformRandom,
            0.0,
            4,
            u64::MAX,
            GatingSchedule::static_fraction(16, 0.25, 7, &[]),
            1,
        );
        assert!(gen_packets(&mut w, 16, 5_000).is_empty());
        // With no pending gating changes and nothing to inject, the
        // workload reports an empty horizon (the kernel may skip forever).
        assert_eq!(w.next_event(5_000), None);

        // A rate zeroed mid-run hits the unguarded resample path: the node
        // whose arrival was already scheduled must go quiet, not panic.
        let mut w = SyntheticWorkload::new(
            4,
            Pattern::UniformRandom,
            1.0,
            1,
            u64::MAX,
            GatingSchedule::none(),
            1,
        );
        let mut active = vec![true; 16];
        let mut out = Vec::new();
        w.generate(0, &active, &mut out); // schedules due arrivals at cycle 1
        w.rate = 0.0;
        out.clear();
        for c in 1..100 {
            w.update_cores(c, &mut active);
            w.generate(c, &active, &mut out);
        }
        assert!(out.len() <= 16, "one resample per node at most");
        assert_eq!(w.next_event(100), None);
    }

    #[test]
    fn tiny_rate_near_end_of_time_saturates_to_never() {
        // p ~ 1e-12 draws geometric gaps around 10^12 cycles; starting the
        // clock near Cycle::MAX used to wrap the next-injection arithmetic
        // (panic in debug, time-travel arrival in release). It must
        // saturate to the NEVER sentinel instead.
        let mut w = SyntheticWorkload::new(
            4,
            Pattern::UniformRandom,
            4e-12, // p = rate / pkt_len = 1e-12
            4,
            u64::MAX,
            GatingSchedule::none(),
            1,
        );
        let start = Cycle::MAX - 16;
        let mut active = vec![true; 16];
        let mut out = Vec::new();
        for c in start..start + 8 {
            w.update_cores(c, &mut active);
            w.generate(c, &active, &mut out);
        }
        assert!(out.is_empty(), "1e-12 probability injected within 8 cycles");
        // Every pending arrival saturated to NEVER: the horizon is empty
        // (nothing left to inject, no gating changes pending).
        assert_eq!(w.next_event(start + 8), None);

        // The resample path (a due arrival drawing its successor gap) must
        // saturate the same way: force a due arrival at rate 1.0, then
        // shrink the rate so the redraw overshoots the end of time.
        let mut w = SyntheticWorkload::new(
            4,
            Pattern::UniformRandom,
            1.0,
            1,
            u64::MAX,
            GatingSchedule::none(),
            1,
        );
        let mut out = Vec::new();
        w.generate(Cycle::MAX - 2, &active, &mut out); // schedules + emits
        w.rate = 1e-12;
        out.clear();
        w.update_cores(Cycle::MAX - 1, &mut active);
        w.generate(Cycle::MAX - 1, &active, &mut out); // redraw saturates
        assert_eq!(w.next_event(Cycle::MAX - 1), None);
    }

    #[test]
    fn set_rate_discards_pending_arrivals_and_redraws() {
        let mut w = SyntheticWorkload::new(
            4,
            Pattern::UniformRandom,
            0.0,
            4,
            u64::MAX,
            GatingSchedule::none(),
            1,
        );
        assert!(gen_packets(&mut w, 16, 1_000).is_empty());
        w.set_rate(2.0); // p = 0.5 per node-cycle
                         // The horizon snaps to the present until the refresh materializes.
        assert_eq!(w.next_event(1_000), Some(1_000));
        let mut active = vec![true; 16];
        let mut out = Vec::new();
        for c in 1_000..1_200 {
            w.update_cores(c, &mut active);
            w.generate(c, &active, &mut out);
        }
        let expect = 0.5 * 16.0 * 200.0;
        assert!(
            (out.len() as f64 - expect).abs() < expect * 0.2,
            "rate change not honored: {} packets vs ~{expect}",
            out.len()
        );
        w.set_rate(0.0);
        out.clear();
        for c in 1_200..1_400 {
            w.update_cores(c, &mut active);
            w.generate(c, &active, &mut out);
        }
        assert!(out.is_empty());
        assert_eq!(w.next_event(1_400), None);
    }

    #[test]
    fn load_scales_with_active_fraction() {
        let count = |fraction: f64| {
            let mut w = SyntheticWorkload::new(
                8,
                Pattern::UniformRandom,
                0.05,
                4,
                u64::MAX,
                GatingSchedule::static_fraction(64, fraction, 11, &[]),
                1,
            );
            gen_packets(&mut w, 64, 5_000).len() as f64
        };
        let full = count(0.0);
        let half = count(0.5);
        assert!((half / full - 0.5).abs() < 0.08, "half/full = {}", half / full);
    }
}
