//! The synthetic workload of the paper's §VI-B: Bernoulli packet injection
//! at a fixed rate (flits/cycle/node) from every *active* core, over a
//! spatial pattern, with a core-gating scenario.

use crate::gating::GatingSchedule;
use crate::patterns::Pattern;
use flov_noc::rng::Rng;
use flov_noc::traits::{PacketRequest, Workload};
use flov_noc::types::{Cycle, NodeId};

/// Synthetic traffic generator.
pub struct SyntheticWorkload {
    pub pattern: Pattern,
    /// Injection rate in flits/cycle/node (per *active* node; total offered
    /// load scales with the active fraction, as in the paper).
    pub rate: f64,
    /// Flits per packet (Table I: 4).
    pub pkt_len: u16,
    /// Virtual network used for synthetic traffic.
    pub vnet: u8,
    /// Stop generating at this cycle (the run then drains).
    pub stop_at: Cycle,
    gating: GatingSchedule,
    rng: Rng,
    k: u16,
    active_cache: Vec<NodeId>,
    cache_dirty: bool,
}

impl SyntheticWorkload {
    pub fn new(
        k: u16,
        pattern: Pattern,
        rate: f64,
        pkt_len: u16,
        stop_at: Cycle,
        gating: GatingSchedule,
        seed: u64,
    ) -> SyntheticWorkload {
        SyntheticWorkload {
            pattern,
            rate,
            pkt_len,
            vnet: 0,
            stop_at,
            gating,
            rng: Rng::new(seed),
            k,
            active_cache: Vec::new(),
            cache_dirty: true,
        }
    }

    fn refresh_cache(&mut self, active: &[bool]) {
        self.active_cache.clear();
        self.active_cache.extend((0..active.len() as NodeId).filter(|&n| active[n as usize]));
        self.cache_dirty = false;
    }
}

impl Workload for SyntheticWorkload {
    fn update_cores(&mut self, cycle: Cycle, active: &mut [bool]) -> bool {
        let changed = self.gating.apply(cycle, active);
        if changed {
            self.cache_dirty = true;
        }
        changed
    }

    fn generate(&mut self, cycle: Cycle, active: &[bool], out: &mut Vec<PacketRequest>) {
        if cycle >= self.stop_at {
            return;
        }
        if self.cache_dirty {
            self.refresh_cache(active);
        }
        let p = self.rate / self.pkt_len as f64;
        let k = self.k;
        for i in 0..self.active_cache.len() {
            let src = self.active_cache[i];
            if !self.rng.chance(p) {
                continue;
            }
            let dst = match self.pattern {
                Pattern::UniformRandom => {
                    // Uniform over the *other active* nodes.
                    if self.active_cache.len() < 2 {
                        continue;
                    }
                    loop {
                        let d = *self.rng.pick(&self.active_cache);
                        if d != src {
                            break d;
                        }
                    }
                }
                _ => {
                    let d = self.pattern.dest(src, k, &mut self.rng);
                    // Deterministic patterns: if the partner is gated (or
                    // self), the pair does not communicate this cycle.
                    if d == src || !active[d as usize] {
                        continue;
                    }
                    d
                }
            };
            out.push(PacketRequest { src, dst, vnet: self.vnet, len: self.pkt_len });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen_packets(w: &mut SyntheticWorkload, nodes: usize, cycles: u64) -> Vec<PacketRequest> {
        let mut active = vec![true; nodes];
        let mut out = Vec::new();
        for c in 0..cycles {
            w.update_cores(c, &mut active);
            w.generate(c, &active, &mut out);
        }
        out
    }

    #[test]
    fn rate_is_respected() {
        let mut w = SyntheticWorkload::new(
            8,
            Pattern::UniformRandom,
            0.08,
            4,
            u64::MAX,
            GatingSchedule::none(),
            1,
        );
        let out = gen_packets(&mut w, 64, 10_000);
        // Expected flits = 0.08 * 64 nodes * 10_000 cycles = 51_200.
        let flits: u64 = out.iter().map(|p| p.len as u64).sum();
        let expect = 51_200.0;
        assert!((flits as f64 - expect).abs() < expect * 0.05, "flits {flits} vs {expect}");
    }

    #[test]
    fn gated_cores_neither_send_nor_receive() {
        let mut w = SyntheticWorkload::new(
            8,
            Pattern::UniformRandom,
            0.1,
            4,
            u64::MAX,
            GatingSchedule::static_fraction(64, 0.5, 3, &[]),
            1,
        );
        let mut active = vec![true; 64];
        let mut out = Vec::new();
        for c in 0..2_000 {
            w.update_cores(c, &mut active);
            w.generate(c, &active, &mut out);
        }
        assert!(!out.is_empty());
        for p in &out {
            assert!(active[p.src as usize], "gated source {}", p.src);
            assert!(active[p.dst as usize], "gated destination {}", p.dst);
            assert_ne!(p.src, p.dst);
        }
    }

    #[test]
    fn tornado_pairs_skip_gated_partners() {
        let mut w = SyntheticWorkload::new(
            8,
            Pattern::Tornado,
            0.5,
            4,
            u64::MAX,
            GatingSchedule::static_fraction(64, 0.4, 5, &[]),
            2,
        );
        let mut active = vec![true; 64];
        let mut out = Vec::new();
        for c in 0..1_000 {
            w.update_cores(c, &mut active);
            w.generate(c, &active, &mut out);
        }
        for p in &out {
            assert!(active[p.src as usize] && active[p.dst as usize]);
            assert_eq!(p.dst / 8, p.src / 8, "tornado pair left its row");
        }
    }

    #[test]
    fn generation_stops_at_stop_cycle() {
        let mut w = SyntheticWorkload::new(
            4,
            Pattern::UniformRandom,
            1.0,
            4,
            100,
            GatingSchedule::none(),
            1,
        );
        let mut active = vec![true; 16];
        let mut out = Vec::new();
        for c in 0..100 {
            w.generate(c, &active, &mut out);
        }
        let n_before = out.len();
        assert!(n_before > 0);
        for c in 100..200 {
            w.update_cores(c, &mut active);
            w.generate(c, &active, &mut out);
        }
        assert_eq!(out.len(), n_before);
    }

    #[test]
    fn load_scales_with_active_fraction() {
        let count = |fraction: f64| {
            let mut w = SyntheticWorkload::new(
                8,
                Pattern::UniformRandom,
                0.05,
                4,
                u64::MAX,
                GatingSchedule::static_fraction(64, fraction, 11, &[]),
                1,
            );
            gen_packets(&mut w, 64, 5_000).len() as f64
        };
        let full = count(0.0);
        let half = count(0.5);
        assert!((half / full - 0.5).abs() < 0.08, "half/full = {}", half / full);
    }
}
