//! Deterministic flit-trace capture and replay.
//!
//! [`RecordingWorkload`] wraps any [`Workload`] and logs everything the
//! simulator can observe from it — the injection stream, the
//! active-core switch events, and the cycles where `update_cores`
//! reported a change (Router Parking reconfigures on that pulse, so it
//! must replay exactly even for inner workloads that return `true`
//! without flipping a bit). [`TraceWorkload`] replays the captured
//! [`TraceData`] as a pure event script with an exact
//! [`Workload::next_event`] horizon, so the time-skip and parallel
//! kernels stay bit-identical to the recorded run.
//!
//! The on-disk container (magic, varint-delta records, trailing
//! CRC-32C) lives in `flov-bench::tracefmt`; this module is the
//! in-memory model plus the replay semantics.

use flov_noc::traits::{PacketRequest, Workload};
use flov_noc::types::{Cycle, NodeId};
use std::cell::RefCell;
use std::rc::Rc;

/// Everything a run's workload did, in simulator-observable terms.
///
/// All three vectors are sorted by cycle (recording appends in cycle
/// order by construction; [`TraceData::sort`] restores the invariant
/// after hand-assembly in tests or fuzzing).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceData {
    /// Injection stream: `(cycle, request)` per generated packet.
    pub packets: Vec<(Cycle, PacketRequest)>,
    /// Active-core flips: `(cycle, node, now_active)`.
    pub core_events: Vec<(Cycle, NodeId, bool)>,
    /// Cycles where the recorded workload's `update_cores` returned
    /// `true`. Kept separately from `core_events` because the contract
    /// allows a change pulse without an observable bit flip.
    pub changed_cycles: Vec<Cycle>,
}

impl TraceData {
    /// Restore the sorted-by-cycle invariant (stable, so same-cycle
    /// record order is preserved).
    pub fn sort(&mut self) {
        self.packets.sort_by_key(|e| e.0);
        self.core_events.sort_by_key(|e| e.0);
        self.changed_cycles.sort_unstable();
    }

    /// Largest node id referenced anywhere in the trace, if any.
    pub fn max_node(&self) -> Option<NodeId> {
        let pkt = self.packets.iter().map(|(_, r)| r.src.max(r.dst)).max();
        let core = self.core_events.iter().map(|(_, n, _)| *n).max();
        pkt.into_iter().chain(core).max()
    }
}

/// Replays a [`TraceData`] capture. Open-loop by default (`done` is
/// still meaningful for closed-loop runs: the trace is finished once
/// every scripted event has fired and every packet was delivered).
pub struct TraceWorkload {
    data: TraceData,
    next_pkt: usize,
    next_core: usize,
    next_changed: usize,
}

impl TraceWorkload {
    pub fn new(mut data: TraceData) -> TraceWorkload {
        data.sort();
        TraceWorkload { data, next_pkt: 0, next_core: 0, next_changed: 0 }
    }

    /// Total packets in the trace (drives `done` for closed-loop runs).
    pub fn packet_count(&self) -> usize {
        self.data.packets.len()
    }
}

impl Workload for TraceWorkload {
    fn update_cores(&mut self, cycle: Cycle, active: &mut [bool]) -> bool {
        while self.next_core < self.data.core_events.len()
            && self.data.core_events[self.next_core].0 <= cycle
        {
            let (_, node, on) = self.data.core_events[self.next_core];
            active[node as usize] = on;
            self.next_core += 1;
        }
        // The recorded change pulse is authoritative, not the bit flips:
        // the source workload may have pulsed without flipping anything.
        let mut changed = false;
        while self.next_changed < self.data.changed_cycles.len()
            && self.data.changed_cycles[self.next_changed] <= cycle
        {
            changed = true;
            self.next_changed += 1;
        }
        changed
    }

    fn generate(&mut self, cycle: Cycle, _active: &[bool], out: &mut Vec<PacketRequest>) {
        while self.next_pkt < self.data.packets.len() && self.data.packets[self.next_pkt].0 <= cycle
        {
            out.push(self.data.packets[self.next_pkt].1);
            self.next_pkt += 1;
        }
    }

    fn done(&self, delivered_packets: u64) -> bool {
        self.next_pkt >= self.data.packets.len()
            && self.next_core >= self.data.core_events.len()
            && self.next_changed >= self.data.changed_cycles.len()
            && delivered_packets >= self.data.packets.len() as u64
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let pkt = self.data.packets.get(self.next_pkt).map(|e| e.0);
        let core = self.data.core_events.get(self.next_core).map(|e| e.0);
        let chg = self.data.changed_cycles.get(self.next_changed).copied();
        [pkt, core, chg].into_iter().flatten().min().map(|c| c.max(now))
    }
}

/// Wraps a live workload and logs its observable behaviour into a shared
/// [`TraceData`]. The wrapper is transparent: it forwards every call and
/// return value unchanged, so a recorded run is bit-identical to an
/// unrecorded one.
pub struct RecordingWorkload {
    inner: Box<dyn Workload>,
    log: Rc<RefCell<TraceData>>,
    /// Active-set snapshot from after the previous `update_cores`, used
    /// to diff out the flip events. Empty until the first call.
    prev_active: Vec<bool>,
}

impl RecordingWorkload {
    pub fn new(inner: Box<dyn Workload>, log: Rc<RefCell<TraceData>>) -> RecordingWorkload {
        RecordingWorkload { inner, log, prev_active: Vec::new() }
    }
}

impl Workload for RecordingWorkload {
    fn update_cores(&mut self, cycle: Cycle, active: &mut [bool]) -> bool {
        if self.prev_active.len() != active.len() {
            // First call: baseline is the pre-call state the simulator
            // handed us (the trace replays on the same initial set).
            self.prev_active = active.to_vec();
        }
        let changed = self.inner.update_cores(cycle, active);
        let mut log = self.log.borrow_mut();
        for (n, (now, prev)) in active.iter().zip(self.prev_active.iter_mut()).enumerate() {
            if *now != *prev {
                log.core_events.push((cycle, n as NodeId, *now));
                *prev = *now;
            }
        }
        if changed {
            log.changed_cycles.push(cycle);
        }
        changed
    }

    fn generate(&mut self, cycle: Cycle, active: &[bool], out: &mut Vec<PacketRequest>) {
        let before = out.len();
        self.inner.generate(cycle, active, out);
        let mut log = self.log.borrow_mut();
        for req in &out[before..] {
            log.packets.push((cycle, *req));
        }
    }

    fn set_feedback(&mut self, delivered: u64, in_flight: u64) {
        self.inner.set_feedback(delivered, in_flight);
    }

    fn done(&self, delivered_packets: u64) -> bool {
        self.inner.done(delivered_packets)
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        self.inner.next_event(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gating::GatingSchedule;
    use crate::patterns::Pattern;
    use crate::synthetic::SyntheticWorkload;

    fn req(src: NodeId, dst: NodeId) -> PacketRequest {
        PacketRequest { src, dst, vnet: 0, len: 4 }
    }

    /// Drive a workload per-cycle, returning its full observable history.
    fn observe(w: &mut dyn Workload, nodes: usize, cycles: u64) -> TraceData {
        let mut active = vec![true; nodes];
        let mut data = TraceData::default();
        let mut prev = active.clone();
        let mut out = Vec::new();
        for c in 0..cycles {
            if w.update_cores(c, &mut active) {
                data.changed_cycles.push(c);
            }
            for (n, (now, p)) in active.iter().zip(prev.iter_mut()).enumerate() {
                if *now != *p {
                    data.core_events.push((c, n as NodeId, *now));
                    *p = *now;
                }
            }
            out.clear();
            w.generate(c, &active, &mut out);
            for r in &out {
                data.packets.push((c, *r));
            }
        }
        data
    }

    #[test]
    fn recording_is_transparent_and_replay_matches() {
        let gating = GatingSchedule::rerandomized_at(16, 0.4, 11, &[100, 300], &[]);
        let make =
            || SyntheticWorkload::new(4, Pattern::UniformRandom, 0.1, 4, 500, gating.clone(), 77);
        // Ground truth: the bare workload observed per-cycle.
        let truth = observe(&mut make(), 16, 600);

        // Recording run must observe identically AND log the same data.
        let log = Rc::new(RefCell::new(TraceData::default()));
        let mut rec = RecordingWorkload::new(Box::new(make()), Rc::clone(&log));
        let rec_view = observe(&mut rec, 16, 600);
        assert_eq!(rec_view, truth, "recording wrapper perturbed the workload");
        drop(rec);
        let captured = Rc::try_unwrap(log).unwrap().into_inner();
        assert_eq!(captured, truth, "captured trace differs from observed truth");

        // Replay must re-observe the exact same history.
        let replay_view = observe(&mut TraceWorkload::new(captured), 16, 600);
        assert_eq!(replay_view, truth, "replay diverged from the recorded run");
    }

    #[test]
    fn replay_changed_pulse_is_authoritative() {
        // A pulse with no bit flip must replay as a pulse.
        let data = TraceData { packets: vec![], core_events: vec![], changed_cycles: vec![7] };
        let mut w = TraceWorkload::new(data);
        let mut active = vec![true; 4];
        assert!(!w.update_cores(6, &mut active));
        assert_eq!(w.next_event(6), Some(7));
        assert!(w.update_cores(7, &mut active));
        assert!(!w.update_cores(8, &mut active));
        assert_eq!(w.next_event(8), None);
    }

    #[test]
    fn replay_horizon_tracks_all_three_cursors() {
        let data = TraceData {
            packets: vec![(10, req(0, 1))],
            core_events: vec![(5, 2, false)],
            changed_cycles: vec![5, 20],
        };
        let mut w = TraceWorkload::new(data);
        assert_eq!(w.next_event(0), Some(5));
        let mut active = vec![true; 4];
        assert!(w.update_cores(5, &mut active));
        assert!(!active[2]);
        assert_eq!(w.next_event(6), Some(10));
        let mut out = Vec::new();
        w.generate(10, &active, &mut out);
        assert_eq!(out, vec![req(0, 1)]);
        assert_eq!(w.next_event(11), Some(20));
        // Past events clamp to the present, never a past horizon.
        assert_eq!(w.next_event(25), Some(25));
        assert!(w.update_cores(25, &mut active));
        assert_eq!(w.next_event(25), None);
        assert!(!w.done(0));
        assert!(w.done(1));
    }

    #[test]
    fn max_node_spans_packets_and_core_events() {
        assert_eq!(TraceData::default().max_node(), None);
        let data = TraceData {
            packets: vec![(0, req(3, 9))],
            core_events: vec![(1, 12, false)],
            changed_cycles: vec![],
        };
        assert_eq!(data.max_node(), Some(12));
    }
}
