//! # flov-workloads — traffic generation for the FLOV evaluation
//!
//! * [`patterns`] — synthetic spatial patterns (Uniform Random, Tornado,
//!   Transpose, Bit-Complement, Neighbor, Hotspot);
//! * [`gating`] — core power-gating scenarios (static fractions, scheduled
//!   re-randomizations for the Fig. 10 reconfiguration experiment);
//! * [`synthetic`] — Bernoulli injection from active cores over a pattern
//!   (the paper's §VI-B workloads);
//! * [`parsec`] — a synthetic full-system traffic model standing in for
//!   gem5 + PARSEC 2.1 (see DESIGN.md §2 for the substitution argument):
//!   nine benchmark profiles, three coherence vnets, MCs at the corners,
//!   phased idle-core consolidation, and work-based completion;
//! * [`mmpp`] — bursty open-loop traffic: MMPP and diurnal load modulation
//!   over the synthetic generator, with exact next-event horizons;
//! * [`trace`] — deterministic flit-trace capture ([`trace::RecordingWorkload`])
//!   and replay ([`trace::TraceWorkload`]).

pub mod gating;
pub mod mmpp;
pub mod parsec;
pub mod patterns;
pub mod synthetic;
pub mod trace;

pub use gating::GatingSchedule;
pub use mmpp::{Dwell, ModulatedWorkload};
pub use parsec::{benchmark, memory_controllers, BenchProfile, ParsecWorkload, PARSEC_BENCHMARKS};
pub use patterns::{Pattern, PatternSpace};
pub use synthetic::SyntheticWorkload;
pub use trace::{RecordingWorkload, TraceData, TraceWorkload};
