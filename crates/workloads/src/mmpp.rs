//! Bursty open-loop traffic: load modulation over the synthetic generator.
//!
//! A [`ModulatedWorkload`] wraps [`SyntheticWorkload`] and walks a cyclic
//! sequence of *phases*, each with its own injection rate. Two dwell
//! disciplines cover the paper-relevant regimes:
//!
//! * [`Dwell::Geometric`] — a Markov-modulated Poisson process (MMPP):
//!   phase dwell times are geometric with a given mean, so the rate
//!   process is a continuous-time-like Markov chain sampled per cycle.
//!   Quiet phases (low or zero rate) are exactly the spans where the
//!   power-gating mechanisms separate — and where the time-skip kernel
//!   must keep jumping, which is why the modulator implements an exact
//!   [`Workload::next_event`] horizon.
//! * [`Dwell::Fixed`] — a deterministic "diurnal" load curve: phases of
//!   fixed length, e.g. a day/night rate alternation.
//!
//! Phase switches are applied inside [`Workload::update_cores`] in strict
//! schedule order, and every switch discards the generator's pending
//! arrivals and redraws them at the switch cycle (memorylessness makes the
//! discard exact, ascending node order makes it deterministic), so runs
//! are bit-identical across the reference, active-set, and parallel
//! kernels.

use crate::gating::GatingSchedule;
use crate::patterns::{Pattern, PatternSpace};
use crate::synthetic::SyntheticWorkload;
use flov_noc::rng::Rng;
use flov_noc::traits::{PacketRequest, Workload};
use flov_noc::types::Cycle;

/// How long the modulator stays in one phase before advancing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dwell {
    /// MMPP: dwell `>= 1` drawn geometrically with the given mean (cycles).
    Geometric { mean: Cycle },
    /// Diurnal: every phase lasts exactly this many cycles (`>= 1`).
    Fixed { cycles: Cycle },
}

/// Phase-modulated synthetic traffic (MMPP / diurnal); see the module docs.
pub struct ModulatedWorkload {
    inner: SyntheticWorkload,
    /// Per-phase injection rates \[flits/cycle/node\], visited cyclically.
    rates: Vec<f64>,
    dwell: Dwell,
    /// Dwell-draw stream, independent of the generator's injection stream
    /// so a phase switch never perturbs the within-phase draw sequence.
    mod_rng: Rng,
    phase: usize,
    /// First cycle of the next phase; switches stop at the generator's
    /// `stop_at` so the drain window can still skip.
    next_switch: Cycle,
}

impl ModulatedWorkload {
    /// Modulated generator over an arbitrary pattern space. Starts in
    /// phase 0 (`rates[0]`); panics if `rates` is empty (the spec layer
    /// rejects that before construction).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        space: PatternSpace,
        pattern: Pattern,
        rates: Vec<f64>,
        dwell: Dwell,
        pkt_len: u16,
        stop_at: Cycle,
        gating: GatingSchedule,
        seed: u64,
    ) -> ModulatedWorkload {
        assert!(!rates.is_empty(), "modulated workload needs at least one phase rate");
        let inner =
            SyntheticWorkload::with_space(space, pattern, rates[0], pkt_len, stop_at, gating, seed);
        let mut w = ModulatedWorkload {
            inner,
            rates,
            dwell,
            // Distinct stream from the generator's `seed ^ ...` forks.
            mod_rng: Rng::new(seed ^ 0x4D4D_5050_4D4D_5050),
            phase: 0,
            next_switch: 0,
        };
        w.next_switch = w.draw_dwell();
        w
    }

    /// Current phase index (tests/diagnostics).
    pub fn phase(&self) -> usize {
        self.phase
    }

    /// First cycle of the next phase (tests/diagnostics).
    pub fn next_switch(&self) -> Cycle {
        self.next_switch
    }

    fn draw_dwell(&mut self) -> Cycle {
        match self.dwell {
            Dwell::Fixed { cycles } => cycles.max(1),
            Dwell::Geometric { mean } => {
                let p = (1.0 / mean.max(1) as f64).min(1.0);
                1u64.saturating_add(self.mod_rng.geometric0(p))
            }
        }
    }

    /// True once the modulator can never act again (all switches are at or
    /// past the generator's stop cycle).
    fn settled(&self) -> bool {
        self.next_switch >= self.inner.stop_at
    }
}

impl Workload for ModulatedWorkload {
    fn update_cores(&mut self, cycle: Cycle, active: &mut [bool]) -> bool {
        // Apply every elapsed switch in schedule order: the dwell stream is
        // consumed identically whether the kernel stepped each cycle or
        // jumped straight to the switch (the horizon below never lets it
        // jump past one).
        while self.next_switch <= cycle && !self.settled() {
            self.phase = (self.phase + 1) % self.rates.len();
            self.inner.set_rate(self.rates[self.phase]);
            let d = self.draw_dwell();
            self.next_switch = self.next_switch.saturating_add(d);
        }
        self.inner.update_cores(cycle, active)
    }

    fn generate(&mut self, cycle: Cycle, active: &[bool], out: &mut Vec<PacketRequest>) {
        self.inner.generate(cycle, active, out);
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let inner = self.inner.next_event(now);
        let switch = (!self.settled()).then(|| self.next_switch.max(now));
        match (inner, switch) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn modulated(rates: Vec<f64>, dwell: Dwell, stop_at: Cycle, seed: u64) -> ModulatedWorkload {
        ModulatedWorkload::new(
            PatternSpace::square(4),
            Pattern::UniformRandom,
            rates,
            dwell,
            4,
            stop_at,
            GatingSchedule::none(),
            seed,
        )
    }

    /// Drive per-cycle, returning packets grouped by cycle.
    fn run(w: &mut ModulatedWorkload, nodes: usize, cycles: u64) -> Vec<(Cycle, usize)> {
        let mut active = vec![true; nodes];
        let mut counts = Vec::new();
        let mut out = Vec::new();
        for c in 0..cycles {
            w.update_cores(c, &mut active);
            out.clear();
            w.generate(c, &active, &mut out);
            counts.push((c, out.len()));
        }
        counts
    }

    #[test]
    fn diurnal_phases_alternate_on_schedule() {
        // 0.0 / 1.0 alternation with fixed 500-cycle phases: the quiet
        // halves must be silent, the busy halves busy.
        let mut w = modulated(vec![0.0, 1.0], Dwell::Fixed { cycles: 500 }, u64::MAX, 3);
        let counts = run(&mut w, 16, 2_000);
        let phase_total = |lo: u64, hi: u64| -> usize {
            counts.iter().filter(|(c, _)| *c >= lo && *c < hi).map(|(_, n)| n).sum()
        };
        assert_eq!(phase_total(0, 500), 0, "quiet phase 0 injected");
        assert!(phase_total(500, 1_000) > 500, "busy phase 1 barely injected");
        assert_eq!(phase_total(1_000, 1_500), 0, "quiet phase 2 injected");
        assert!(phase_total(1_500, 2_000) > 500);
    }

    #[test]
    fn mmpp_mean_dwell_is_respected() {
        let mut w = modulated(vec![0.0, 0.2], Dwell::Geometric { mean: 200 }, u64::MAX, 7);
        let mut switches = 0u64;
        let mut last_phase = w.phase();
        let mut active = vec![true; 16];
        let mut out = Vec::new();
        for c in 0..100_000 {
            w.update_cores(c, &mut active);
            w.generate(c, &active, &mut out);
            if w.phase() != last_phase {
                switches += 1;
                last_phase = w.phase();
            }
        }
        // Expected switches = cycles / mean dwell = 500.
        assert!((400..=600).contains(&switches), "switch count {switches} vs ~500");
    }

    #[test]
    fn quiet_phase_horizon_reaches_the_next_switch() {
        // In a zero-rate phase with no pending gating the only future event
        // is the phase switch itself — the horizon must point exactly there
        // (this is what lets the active-set kernel skip the quiet span).
        let mut w = modulated(vec![0.0, 0.3], Dwell::Fixed { cycles: 1_000 }, u64::MAX, 5);
        let mut active = vec![true; 16];
        let mut out = Vec::new();
        w.update_cores(0, &mut active);
        w.generate(0, &active, &mut out);
        assert!(out.is_empty());
        assert_eq!(w.next_event(1), Some(1_000));
    }

    #[test]
    fn modulation_stops_at_stop_cycle() {
        let mut w = modulated(vec![0.0, 0.3], Dwell::Fixed { cycles: 100 }, 1_000, 5);
        let mut active = vec![true; 16];
        let mut out = Vec::new();
        for c in 0..1_000 {
            w.update_cores(c, &mut active);
            w.generate(c, &active, &mut out);
        }
        // Past stop_at the workload settles: empty horizon, no switches.
        w.update_cores(1_000, &mut active);
        let phase = w.phase();
        w.update_cores(5_000, &mut active);
        assert_eq!(w.phase(), phase, "modulator switched after stop_at");
        assert_eq!(w.next_event(5_000), None);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let collect = |seed| {
            let mut w = modulated(vec![0.01, 0.5], Dwell::Geometric { mean: 300 }, u64::MAX, seed);
            run(&mut w, 16, 5_000)
        };
        assert_eq!(collect(9), collect(9));
        assert_ne!(collect(9), collect(10));
    }
}
