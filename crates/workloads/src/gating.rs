//! Core power-gating scenarios: which cores the OS has turned off, and when.
//!
//! The paper's synthetic sweeps gate a fixed fraction of randomly chosen
//! cores; the reconfiguration-overhead experiment (Fig. 10) changes the
//! gated set at fixed points in time.

use flov_noc::rng::Rng;
use flov_noc::types::{Cycle, NodeId};

/// A time-indexed schedule of core-gating changes.
#[derive(Clone, Debug, Default)]
pub struct GatingSchedule {
    /// Sorted events: at `cycle`, the set of *gated* cores becomes exactly
    /// the given list.
    events: Vec<(Cycle, Vec<NodeId>)>,
    next: usize,
}

impl GatingSchedule {
    /// No gating at all.
    pub fn none() -> GatingSchedule {
        GatingSchedule::default()
    }

    /// Gate `fraction` of the `nodes` cores from cycle 0, chosen uniformly
    /// at random with `seed`. `protected` nodes are never gated (e.g.
    /// memory controllers).
    pub fn static_fraction(
        nodes: usize,
        fraction: f64,
        seed: u64,
        protected: &[NodeId],
    ) -> GatingSchedule {
        let gated = Self::pick(nodes, fraction, &mut Rng::new(seed), protected);
        GatingSchedule { events: vec![(0, gated)], next: 0 }
    }

    /// Re-randomize the gated set (same fraction) at each of the given
    /// cycles — the Fig. 10 scenario uses changes at 50k and 60k cycles.
    pub fn rerandomized_at(
        nodes: usize,
        fraction: f64,
        seed: u64,
        changes: &[Cycle],
        protected: &[NodeId],
    ) -> GatingSchedule {
        let mut rng = Rng::new(seed);
        let mut events = vec![(0, Self::pick(nodes, fraction, &mut rng, protected))];
        for &c in changes {
            events.push((c, Self::pick(nodes, fraction, &mut rng, protected)));
        }
        events.sort_by_key(|e| e.0);
        GatingSchedule { events, next: 0 }
    }

    /// Explicit schedule.
    pub fn explicit(mut events: Vec<(Cycle, Vec<NodeId>)>) -> GatingSchedule {
        events.sort_by_key(|e| e.0);
        GatingSchedule { events, next: 0 }
    }

    fn pick(nodes: usize, fraction: f64, rng: &mut Rng, protected: &[NodeId]) -> Vec<NodeId> {
        let mut candidates: Vec<NodeId> =
            (0..nodes as NodeId).filter(|n| !protected.contains(n)).collect();
        rng.shuffle(&mut candidates);
        let count = ((nodes as f64 * fraction).round() as usize).min(candidates.len());
        let mut gated: Vec<NodeId> = candidates[..count].to_vec();
        gated.sort_unstable();
        gated
    }

    /// Apply due events to `active`. Returns true if anything changed.
    pub fn apply(&mut self, cycle: Cycle, active: &mut [bool]) -> bool {
        let mut changed = false;
        while self.next < self.events.len() && self.events[self.next].0 <= cycle {
            let gated = &self.events[self.next].1;
            for (n, a) in active.iter_mut().enumerate() {
                let want = !gated.contains(&(n as NodeId));
                if *a != want {
                    *a = want;
                    changed = true;
                }
            }
            self.next += 1;
        }
        changed
    }

    /// The scheduled change cycles (diagnostics).
    pub fn change_cycles(&self) -> Vec<Cycle> {
        self.events.iter().map(|e| e.0).collect()
    }

    /// Cycle of the next unapplied event, if any — the schedule's
    /// contribution to the workload's next-event horizon: the clock must
    /// not jump past it.
    pub fn next_change(&self) -> Option<Cycle> {
        self.events.get(self.next).map(|e| e.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_fraction_gates_requested_count() {
        let mut s = GatingSchedule::static_fraction(64, 0.5, 42, &[]);
        let mut active = vec![true; 64];
        assert!(s.apply(0, &mut active));
        assert_eq!(active.iter().filter(|&&a| !a).count(), 32);
    }

    #[test]
    fn protected_nodes_stay_active() {
        let protected = [0u16, 7, 56, 63];
        let mut s = GatingSchedule::static_fraction(64, 0.8, 7, &protected);
        let mut active = vec![true; 64];
        s.apply(0, &mut active);
        for &p in &protected {
            assert!(active[p as usize], "protected node {p} gated");
        }
        assert_eq!(active.iter().filter(|&&a| !a).count(), 51); // round(51.2)
    }

    #[test]
    fn deterministic_for_same_seed() {
        let pick = |seed| {
            let mut s = GatingSchedule::static_fraction(64, 0.3, seed, &[]);
            let mut a = vec![true; 64];
            s.apply(0, &mut a);
            a
        };
        assert_eq!(pick(1), pick(1));
        assert_ne!(pick(1), pick(2));
    }

    #[test]
    fn rerandomized_changes_apply_at_cycles() {
        let mut s = GatingSchedule::rerandomized_at(16, 0.25, 9, &[500, 900], &[]);
        let mut a = vec![true; 16];
        s.apply(0, &mut a);
        let first = a.clone();
        assert!(!s.apply(499, &mut a));
        assert_eq!(a, first);
        s.apply(500, &mut a);
        assert_eq!(a.iter().filter(|&&x| !x).count(), 4);
        s.apply(900, &mut a);
        assert_eq!(a.iter().filter(|&&x| !x).count(), 4);
    }

    #[test]
    fn next_change_tracks_unapplied_events() {
        let mut s = GatingSchedule::rerandomized_at(16, 0.25, 9, &[500, 900], &[]);
        let mut a = vec![true; 16];
        assert_eq!(s.next_change(), Some(0));
        s.apply(0, &mut a);
        assert_eq!(s.next_change(), Some(500));
        s.apply(499, &mut a);
        assert_eq!(s.next_change(), Some(500));
        s.apply(500, &mut a);
        assert_eq!(s.next_change(), Some(900));
        s.apply(900, &mut a);
        assert_eq!(s.next_change(), None);
        assert_eq!(GatingSchedule::none().next_change(), None);
    }

    #[test]
    fn zero_fraction_gates_nothing() {
        let mut s = GatingSchedule::static_fraction(64, 0.0, 1, &[]);
        let mut a = vec![true; 64];
        assert!(!s.apply(0, &mut a));
        assert!(a.iter().all(|&x| x));
    }
}
