//! Offline stand-in for `serde`.
//!
//! This workspace must build without network access to crates.io, so the
//! real serde cannot be fetched. This shim keeps the same import surface
//! (`use serde::{Serialize, Deserialize}` plus the derive macros) but uses a
//! much simpler model: every serializable value converts to and from a
//! [`Value`] tree, and `serde_json` (also shimmed in `compat/`) renders that
//! tree to JSON text with a *stable canonical encoding* — map entries keep
//! field declaration order and floats format via Rust's shortest-roundtrip
//! `{:?}`, so equal values always produce byte-identical JSON. The
//! experiment engine's content-addressed result cache keys on exactly that
//! property.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A JSON-shaped value tree: the data model every `Serialize` type lowers
/// into and every `Deserialize` type is rebuilt from.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// All integers, signed or unsigned (i128 covers the full u64 range).
    Int(i128),
    Float(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Declaration-ordered key/value pairs (order is part of the canonical
    /// encoding; no sorting, no deduplication).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Look up a map entry by key.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::custom(format!("missing field `{name}`"))),
            other => Error::expected("a map", other),
        }
    }

    /// View as a sequence.
    pub fn seq(&self) -> Result<&[Value], Error> {
        match self {
            Value::Seq(items) => Ok(items),
            other => Error::expected("a sequence", other),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "a bool",
            Value::Int(_) => "an integer",
            Value::Float(_) => "a float",
            Value::Str(_) => "a string",
            Value::Seq(_) => "a sequence",
            Value::Map(_) => "a map",
        }
    }
}

/// Serialization/deserialization error.
#[derive(Clone, Debug)]
pub struct Error(String);

impl Error {
    pub fn custom(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }

    fn expected<T>(what: &str, got: &Value) -> Result<T, Error> {
        Err(Error(format!("expected {what}, found {}", got.kind())))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Lower `self` into the [`Value`] data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from the [`Value`] data model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i).map_err(|_| {
                        Error::custom(format!(
                            "integer {i} out of range for {}", stringify!($t)
                        ))
                    }),
                    other => Error::expected("an integer", other),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(x) => Ok(*x as $t),
                    // JSON has one number type: accept integer tokens too.
                    Value::Int(i) => Ok(*i as $t),
                    // Non-finite floats round-trip through JSON null.
                    Value::Null => Ok(<$t>::NAN),
                    other => Error::expected("a number", other),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Error::expected("a bool", other),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Error::expected("a string", other),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

/// `&'static str` deserialization leaks the parsed string. Only used for
/// static-table types (e.g. benchmark profiles) in tests; fine for a shim.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Error::expected("a string", other),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.seq()?.iter().map(Deserialize::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v.seq()?;
        if items.len() != N {
            return Err(Error::custom(format!(
                "expected an array of {N} elements, found {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items.iter().map(Deserialize::from_value).collect::<Result<_, _>>()?;
        parsed.try_into().map_err(|_| Error::custom("array length changed during conversion"))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $idx:tt),+) => $n:expr;)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.seq()?;
                if items.len() != $n {
                    return Err(Error::custom(format!(
                        "expected a tuple of {} elements, found {}", $n, items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0) => 1;
    (A: 0, B: 1) => 2;
    (A: 0, B: 1, C: 2) => 3;
    (A: 0, B: 1, C: 2, D: 3) => 4;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_field_lookup() {
        let v = Value::Map(vec![("a".into(), Value::Int(1))]);
        assert_eq!(v.field("a").unwrap(), &Value::Int(1));
        assert!(v.field("b").is_err());
    }

    #[test]
    fn primitive_roundtrips() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(f64::from_value(&0.25f64.to_value()).unwrap(), 0.25);
        assert_eq!(f64::from_value(&Value::Int(3)).unwrap(), 3.0);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
        assert!(u8::from_value(&Value::Int(300)).is_err());
    }

    #[test]
    fn compound_roundtrips() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()).unwrap(), v);
        let a = [0.5f64, 1.5];
        assert_eq!(<[f64; 2]>::from_value(&a.to_value()).unwrap(), a);
        let t = (1u64, 2.5f64, 3u64);
        assert_eq!(<(u64, f64, u64)>::from_value(&t.to_value()).unwrap(), t);
        let o: Option<u64> = None;
        assert_eq!(Option::<u64>::from_value(&o.to_value()).unwrap(), None);
    }

    #[test]
    fn nonfinite_floats_roundtrip_via_null() {
        let v = f64::NAN.to_value();
        // The JSON writer maps non-finite to null; Deserialize accepts it.
        assert!(f64::from_value(&Value::Null).unwrap().is_nan());
        assert!(matches!(v, Value::Float(_)));
    }
}
