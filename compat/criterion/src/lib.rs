//! Offline stand-in for `criterion`, covering the surface this
//! workspace's benches use: `criterion_group!`/`criterion_main!`,
//! `Criterion::benchmark_group`, `sample_size`, `throughput`,
//! `bench_function`, and `Bencher::iter`.
//!
//! Instead of criterion's statistical machinery, each benchmark runs a
//! short warm-up followed by `sample_size` timed samples and reports the
//! per-iteration mean plus min/max sample spread (and elements/sec when a
//! throughput is set). Good enough to spot order-of-magnitude
//! regressions; not a substitute for real confidence intervals.

use std::time::{Duration, Instant};

/// Units processed per iteration, for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\n== {name} ==");
        BenchmarkGroup { _c: self, name, sample_size: 10, throughput: None }
    }
}

pub struct BenchmarkGroup<'c> {
    _c: &'c mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher { samples: Vec::new(), budget: self.sample_size };
        f(&mut b);
        let mean = if b.samples.is_empty() {
            Duration::ZERO
        } else {
            b.samples.iter().sum::<Duration>() / b.samples.len() as u32
        };
        let lo = b.samples.iter().min().copied().unwrap_or_default();
        let hi = b.samples.iter().max().copied().unwrap_or_default();
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) | Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
                format!("  ({:.3e} /s)", n as f64 / mean.as_secs_f64())
            }
            _ => String::new(),
        };
        eprintln!(
            "{}/{id}: mean {mean:?} [min {lo:?}, max {hi:?}, n={}]{rate}",
            self.name,
            b.samples.len(),
        );
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    samples: Vec<Duration>,
    budget: usize,
}

impl Bencher {
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        std::hint::black_box(f()); // warm-up, untimed
        for _ in 0..self.budget {
            let t0 = Instant::now();
            std::hint::black_box(f());
            self.samples.push(t0.elapsed());
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_requested_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(5);
        g.throughput(Throughput::Elements(100));
        let mut calls = 0u32;
        g.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        g.finish();
        // warm-up + 5 timed samples
        assert_eq!(calls, 6);
    }

    criterion_group!(smoke, noop_bench);

    fn noop_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("noop");
        g.sample_size(2);
        g.bench_function("id", |b| b.iter(|| 1 + 1));
        g.finish();
    }

    #[test]
    fn macros_expand_and_run() {
        smoke();
    }
}
