//! Offline stand-in for `serde_derive`.
//!
//! This workspace builds without network access to crates.io, so the real
//! serde cannot be fetched; the `compat/serde` shim defines value-tree
//! `Serialize`/`Deserialize` traits and this proc-macro derives them. It
//! supports exactly the type shapes the workspace uses:
//!
//! * structs with named fields,
//! * enums with unit variants (optionally with explicit discriminants),
//! * enums with struct or tuple variants (externally tagged, like serde).
//!
//! Generics, tuple structs and `#[serde(...)]` attributes are rejected with
//! a compile error rather than silently mis-encoded.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    Struct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Struct(Vec<String>),
    Tuple(usize),
}

fn compile_error(msg: &str) -> TokenStream {
    format!("::core::compile_error!({msg:?});").parse().unwrap()
}

/// Skip `#[...]` attribute groups starting at `i`; returns the new index.
fn skip_attrs(toks: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < toks.len() {
        match (&toks[i], &toks[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skip a visibility qualifier (`pub`, `pub(crate)`, ...) at `i`.
fn skip_vis(toks: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = toks.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Parse the field names of a `{ name: Type, ... }` body.
fn parse_named_fields(body: &proc_macro::Group) -> Result<Vec<String>, String> {
    let toks: Vec<TokenTree> = body.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_vis(&toks, skip_attrs(&toks, i));
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(t) => return Err(format!("expected field name, found `{t}`")),
            None => break,
        };
        i += 1;
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        // Skip the type: everything up to the next comma outside angle
        // brackets (commas inside parens/brackets are separate groups).
        let mut angle = 0i32;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(name);
    }
    Ok(fields)
}

/// Count the fields of a tuple-variant `( Type, ... )` body.
fn count_tuple_fields(body: &proc_macro::Group) -> usize {
    let mut n = 0usize;
    let mut angle = 0i32;
    let mut any = false;
    for t in body.stream() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => n += 1,
            _ => any = true,
        }
    }
    if any {
        n + 1
    } else {
        0
    }
}

fn parse_variants(body: &proc_macro::Group) -> Result<Vec<Variant>, String> {
    let toks: Vec<TokenTree> = body.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs(&toks, i);
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(t) => return Err(format!("expected variant name, found `{t}`")),
            None => break,
        };
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g)?;
                i += 1;
                VariantKind::Struct(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g);
                i += 1;
                VariantKind::Tuple(n)
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == ',' => {
                    i += 1;
                    break;
                }
                _ => i += 1,
            }
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

fn parse_input(input: TokenStream) -> Result<(String, Shape), String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_vis(&toks, skip_attrs(&toks, 0));
    let kw = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            return Err(format!("cannot derive for generic type `{name}`"));
        }
    }
    match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Shape::Struct(parse_named_fields(g)?)))
            }
            _ => Err(format!("`{name}`: only structs with named fields are supported")),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Shape::Enum(parse_variants(g)?)))
            }
            _ => Err(format!("`{name}`: malformed enum body")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = match parse_input(input) {
        Ok(p) => p,
        Err(e) => return compile_error(&e),
    };
    let body = match shape {
        Shape::Struct(fields) => {
            let mut entries = String::new();
            for f in &fields {
                entries.push_str(&format!(
                    "(::std::string::String::from(\"{f}\"), \
                     ::serde::Serialize::to_value(&self.{f})),"
                ));
            }
            format!("::serde::Value::Map(vec![{entries}])")
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in &variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => \
                         ::serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                    )),
                    VariantKind::Struct(fields) => {
                        let bindings = fields.join(", ");
                        let mut entries = String::new();
                        for f in fields {
                            entries.push_str(&format!(
                                "(::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::to_value({f})),"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {bindings} }} => ::serde::Value::Map(vec![(\
                             ::std::string::String::from(\"{vn}\"), \
                             ::serde::Value::Map(vec![{entries}]))]),"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let bindings: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let mut items = String::new();
                        for b in &bindings {
                            items.push_str(&format!("::serde::Serialize::to_value({b}),"));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Map(vec![(\
                             ::std::string::String::from(\"{vn}\"), \
                             ::serde::Value::Seq(vec![{items}]))]),",
                            bindings.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = match parse_input(input) {
        Ok(p) => p,
        Err(e) => return compile_error(&e),
    };
    let body = match shape {
        Shape::Struct(fields) => {
            let mut inits = String::new();
            for f in &fields {
                inits.push_str(&format!(
                    "{f}: ::serde::Deserialize::from_value(__v.field(\"{f}\")?)?,"
                ));
            }
            format!("::core::result::Result::Ok({name} {{ {inits} }})")
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in &variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}),"
                    )),
                    VariantKind::Struct(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            inits.push_str(&format!(
                                "{f}: ::serde::Deserialize::from_value(__inner.field(\"{f}\")?)?,"
                            ));
                        }
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => ::core::result::Result::Ok({name}::{vn} {{ {inits} }}),"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let mut inits = String::new();
                        for k in 0..*n {
                            inits.push_str(&format!(
                                "::serde::Deserialize::from_value(__seq.get({k}).ok_or_else(\
                                 || ::serde::Error::custom(\"{name}::{vn}: missing field {k}\"))?)?,"
                            ));
                        }
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{ let __seq = __inner.seq()?; \
                             ::core::result::Result::Ok({name}::{vn}({inits})) }},"
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\n\
                 __other => ::core::result::Result::Err(::serde::Error::custom(\
                 format!(\"unknown {name} variant {{__other:?}}\"))),\n\
                 }},\n\
                 ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                 let (__tag, __inner) = &__entries[0];\n\
                 let _ = __inner;\n\
                 match __tag.as_str() {{\n\
                 {tagged_arms}\n\
                 __other => ::core::result::Result::Err(::serde::Error::custom(\
                 format!(\"unknown {name} variant {{__other:?}}\"))),\n\
                 }}\n\
                 }},\n\
                 _ => ::core::result::Result::Err(::serde::Error::custom(\
                 \"expected a {name} variant (string or single-entry map)\")),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
         {body}\n\
         }}\n\
         }}"
    )
    .parse()
    .unwrap()
}
