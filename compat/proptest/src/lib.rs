//! Offline stand-in for `proptest`, covering the surface this workspace's
//! property tests use: the `proptest!` macro with `arg in strategy`
//! bindings, `ProptestConfig { cases, .. }`, integer/float range
//! strategies, `any::<bool>()`, `prop::collection::vec`, and the
//! `prop_assert*` macros.
//!
//! Differences from real proptest, by design:
//!
//! * Cases are generated from a PRNG seeded by the test's module path and
//!   name, so runs are fully deterministic and reproducible — there is no
//!   failure-persistence file.
//! * There is no shrinking: on failure the runner prints the exact
//!   generated inputs and re-raises the panic.

use std::fmt::Debug;
use std::ops::Range;

/// Runner configuration (`cases` is the only knob the shim honors).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for source compatibility; unused (no shrinking).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 0 }
    }
}

/// Legacy module path used by real proptest re-exports.
pub mod test_runner {
    pub use crate::ProptestConfig;
}

/// Deterministic splitmix64 PRNG for case generation.
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Seed from the property's identity and case index, so every property
    /// explores a stable, distinct input sequence.
    pub fn for_case(test_name: &str, case: u64) -> TestRng {
        let mut h = 0xcbf29ce484222325u64;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        TestRng(h ^ case.wrapping_mul(0x9E3779B97F4A7C15))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of random values (no shrinking in this shim).
pub trait Strategy {
    type Value: Debug;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values (real proptest's `prop_map`).
    fn prop_map<T: Debug, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy that always yields a fixed value (real proptest's `Just`).
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Debug, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident/$i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
}

/// Uniform choice between same-valued strategies (`prop_oneof!`). Unlike
/// real proptest there are no per-arm weights.
pub struct Union<T>(Vec<Box<dyn Strategy<Value = T>>>);

impl<T: Debug> Union<T> {
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
        assert!(!arms.is_empty(), "empty prop_oneof");
        Union(arms)
    }

    /// Box one arm; lets `prop_oneof!` unify all arm types through `T`
    /// without an explicit cast (whose `_` would hit integer fallback).
    pub fn arm<S: Strategy<Value = T> + 'static>(s: S) -> Box<dyn Strategy<Value = T>> {
        Box::new(s)
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let arm = (rng.next_u64() % self.0.len() as u64) as usize;
        self.0[arm].generate(rng)
    }
}

/// Choose uniformly among the listed strategies (all yielding one type).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Union::arm($arm)),+])
    };
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                let off = if span == 0 { rng.next_u64() } else { rng.next_u64() % span };
                (self.start as u128 + off as u128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}

impl_signed_range!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// Types with a canonical "anything" strategy.
pub trait Arbitrary: Sized + Debug {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub struct Any<T>(std::marker::PhantomData<T>);

/// `any::<T>()` — the full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    /// Real proptest exposes strategy modules under `prop::`; alias the
    /// crate root so `prop::collection::vec(..)` resolves.
    pub use crate as prop;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{Arbitrary, Just, ProptestConfig, Strategy};
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// The property-test entry point: each `fn name(arg in strategy, ..) {..}`
/// becomes a `#[test]` running `config.cases` deterministic random cases.
/// On failure the generated inputs are printed and the panic re-raised.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $($(#[$meta:meta])* fn $name:ident (
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases as u64 {
                let mut __rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __inputs = {
                    let mut __s = String::new();
                    $(__s.push_str(&format!(
                        "  {} = {:?}\n", stringify!($arg), &$arg
                    ));)+
                    __s
                };
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || $body),
                );
                if let Err(__panic) = __outcome {
                    eprintln!(
                        "proptest: {} failed at case {}/{} with inputs:\n{}",
                        stringify!($name), __case, __cfg.cases, __inputs
                    );
                    ::std::panic::resume_unwind(__panic);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(
            a in 0u8..6,
            b in 10u64..1_000_000,
            x in 0.25f64..0.75,
        ) {
            prop_assert!(a < 6);
            prop_assert!((10..1_000_000).contains(&b));
            prop_assert!((0.25..0.75).contains(&x));
        }

        #[test]
        fn vec_strategy_respects_size(v in prop::collection::vec(any::<bool>(), 1..40)) {
            prop_assert!(!v.is_empty() && v.len() < 40);
        }
    }

    proptest! {
        #[test]
        fn full_u64_range_works(s in 0u64..u64::MAX) {
            prop_assert!(s < u64::MAX);
        }

        #[test]
        fn oneof_map_and_just_compose(
            v in prop_oneof![
                Just(0u16),
                (1u16..5).prop_map(|x| x * 10),
                (1u16..3, 1u16..3).prop_map(|(a, b)| 100 + a + b),
            ],
        ) {
            prop_assert!(v == 0 || (10..50).contains(&v) || (102..105).contains(&v));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = super::TestRng::for_case("x::y", 3);
        let mut b = super::TestRng::for_case("x::y", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = super::TestRng::for_case("x::y", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
