//! Offline stand-in for `serde_json`, rendering and parsing the [`Value`]
//! tree of the workspace `serde` shim.
//!
//! The compact encoding is *canonical*: map entries keep declaration order,
//! there is no whitespace, floats use Rust's shortest-roundtrip `{:?}`
//! formatting, and integers print exactly. Equal values therefore always
//! produce byte-identical JSON — the property the experiment engine's
//! content-addressed cache keys on. Non-finite floats (which JSON cannot
//! represent) are written as `null` and read back as NaN.

use serde::{Deserialize, Serialize};
use std::fmt;

pub use serde::Value;

/// Parse or render error with a byte offset for parse failures.
#[derive(Clone, Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error(e.to_string())
    }
}

/// Lower any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Value {
    value.to_value()
}

/// Rebuild a value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(v: &Value) -> Result<T, Error> {
    T::from_value(v).map_err(Error::from)
}

/// Canonical compact JSON (no whitespace, declaration-ordered maps).
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Human-readable JSON with two-space indentation.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Canonical compact JSON as bytes.
pub fn to_vec<T: Serialize>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Parse JSON text into any deserializable value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    from_value(&v)
}

/// Parse JSON bytes (must be UTF-8).
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => write_block(out, indent, depth, '[', ']', items.len(), |out, i| {
            write_value(&items[i], out, indent, depth + 1);
        }),
        Value::Map(entries) => {
            write_block(out, indent, depth, '{', '}', entries.len(), |out, i| {
                let (k, v) = &entries[i];
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(v, out, indent, depth + 1);
            })
        }
    }
}

fn write_block(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    n: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if n == 0 {
        out.push(close);
        return;
    }
    for i in 0..n {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_literal("\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>().map(Value::Float).map_err(|_| self.err("invalid number"))
        } else {
            text.parse::<i128>().map(Value::Int).map_err(|_| self.err("invalid number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_is_canonical() {
        let v = Value::Map(vec![
            ("b".into(), Value::Int(2)),
            ("a".into(), Value::Float(0.5)),
            ("s".into(), Value::Seq(vec![Value::Bool(true), Value::Null])),
        ]);
        let s = to_string(&Wrapper(v.clone())).unwrap();
        assert_eq!(s, r#"{"b":2,"a":0.5,"s":[true,null]}"#);
        // Parsing the canonical text reproduces the exact tree.
        let back: WrapperDe = from_str(&s).unwrap();
        assert_eq!(back.0, v);
    }

    struct Wrapper(Value);
    impl Serialize for Wrapper {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }
    struct WrapperDe(Value);
    impl Deserialize for WrapperDe {
        fn from_value(v: &Value) -> Result<Self, serde::Error> {
            Ok(WrapperDe(v.clone()))
        }
    }

    #[test]
    fn float_formatting_distinguishes_ints() {
        assert_eq!(to_string(&0.0f64).unwrap(), "0.0");
        assert_eq!(to_string(&2.0e9f64).unwrap(), "2000000000.0");
        assert_eq!(to_string(&0.02f64).unwrap(), "0.02");
        assert_eq!(to_string(&7u64).unwrap(), "7");
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "a\"b\\c\nd\te\u{0001}é\u{1F600}".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
        // Unicode escapes parse too (the writer emits raw UTF-8).
        let via_escape: String = from_str(r#""é 😀""#).unwrap();
        assert_eq!(via_escape, "é \u{1F600}");
    }

    #[test]
    fn pretty_roundtrips() {
        let v = vec![(1u64, 0.5f64), (2, 1.5)];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<(u64, f64)> = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        let back: f64 = from_str("null").unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn parse_errors_have_positions() {
        assert!(from_str::<u64>("[1,").is_err());
        assert!(from_str::<u64>("1 2").is_err());
        assert!(from_str::<String>("\"abc").is_err());
    }
}
