//! Offline stand-in for `rayon`, covering the slice of the API this
//! workspace uses: `specs.par_iter().map(f).collect::<Vec<_>>()`.
//!
//! Work is distributed over `std::thread::scope` workers pulling indices
//! from a shared atomic counter (simulations vary widely in cost, so
//! self-scheduling beats static chunking), and results are reassembled in
//! input order — matching rayon's `collect()` ordering guarantee that the
//! experiment harness relies on.

use std::sync::atomic::{AtomicUsize, Ordering};

pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// `.par_iter()` on slices and vectors.
pub trait IntoParallelRefIterator<'a> {
    type Item: Sync + 'a;
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap { items: self.items, f }
    }
}

pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, R: Send, F: Fn(&'a T) -> R + Sync> ParMap<'a, T, F> {
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        C::from(parallel_map(self.items, &self.f))
    }
}

/// The number of worker threads used for parallel maps.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

fn parallel_map<'a, T: Sync, R: Send>(items: &'a [T], f: &(impl Fn(&'a T) -> R + Sync)) -> Vec<R> {
    let n = items.len();
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(&items[i])));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("rayon shim: worker panicked") {
                slots[i] = Some(r);
            }
        }
    });
    slots.into_iter().map(|s| s.expect("rayon shim: missing slot")).collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = items.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let none: Vec<u64> = Vec::new();
        let out: Vec<u64> = none.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [7u64];
        let out: Vec<u64> = one[..].par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn uneven_work_is_self_scheduled() {
        let items: Vec<u64> = (0..64).collect();
        let out: Vec<u64> = items
            .par_iter()
            .map(|&x| {
                // Make early items much more expensive than late ones.
                let spin = if x < 4 { 100_000 } else { 10 };
                let mut acc = x;
                for i in 0..spin {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
                }
                std::hint::black_box(acc);
                x
            })
            .collect();
        assert_eq!(out, items);
    }
}
