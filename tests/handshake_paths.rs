//! Targeted tests for specific handshake-protocol paths: drain aborts,
//! drain timeouts, gFLOV's wakeup-defer rule, and re-gating cycles.

use flov_core::{Flov, FlovMode, FlovParams};
use flov_noc::network::Simulation;
use flov_noc::traits::{PacketRequest, ScriptedWorkload};
use flov_noc::types::{NodeId, PowerState};
use flov_noc::NocConfig;

fn cfg() -> NocConfig {
    NocConfig::small_test() // 4x4, 1 vnet
}

fn flov_sim(
    mode: FlovMode,
    events: Vec<(u64, PacketRequest)>,
    cores: Vec<(u64, NodeId, bool)>,
) -> Simulation {
    let c = cfg();
    let mech = Flov::new(mode, FlovParams::for_config(&c), c.nodes());
    let w = ScriptedWorkload::new(events).with_core_events(cores);
    Simulation::new(c, Box::new(mech), Box::new(w))
}

#[test]
fn drain_aborts_when_core_reactivates() {
    // Core 5 gates at 0, reactivates at 30 — mid-drain (idle threshold 16,
    // so draining starts ~16 and cannot finish a handshake window before
    // the abort).
    let mut sim = flov_sim(FlovMode::Generalized, vec![], vec![(0, 5, false), (30, 5, true)]);
    let mut saw_draining = false;
    for _ in 0..200 {
        sim.step();
        if sim.core.power(5) == PowerState::Draining {
            saw_draining = true;
        }
    }
    assert!(saw_draining, "router never entered Draining");
    assert_eq!(sim.core.power(5), PowerState::Active, "drain did not abort");
}

#[test]
fn drain_aborts_when_traffic_queues_at_nic() {
    // Core 5 gates at 0; at cycle 25 a packet is generated *from* node 5
    // (e.g. a late coherence reply): the pending NIC aborts the drain, the
    // packet is delivered, and only then does the router gate.
    let mut sim = flov_sim(
        FlovMode::Generalized,
        vec![(25, PacketRequest { src: 5, dst: 10, vnet: 0, len: 4 })],
        vec![(0, 5, false)],
    );
    let end = sim.run_until_done(10_000);
    assert!(end < 10_000);
    assert_eq!(sim.core.activity.packets_delivered, 1);
    sim.run(2_000);
    assert_eq!(sim.core.power(5), PowerState::Sleep, "router failed to re-gate");
}

#[test]
fn gflov_defers_wakeup_next_to_draining_logical_neighbor() {
    // Gate 5 and 6 (same row, adjacent): both sleep under gFLOV. Then
    // reactivate 5's core while 9... simpler: force the defer window by
    // gating a third router late so it drains while 5 wants to wake.
    let mut sim = flov_sim(
        FlovMode::Generalized,
        vec![],
        vec![(0, 5, false), (0, 6, false), (3_000, 4, false), (3_010, 5, true)],
    );
    sim.run(2_500);
    assert_eq!(sim.core.power(5), PowerState::Sleep);
    assert_eq!(sim.core.power(6), PowerState::Sleep);
    // At 3_000 core 4 gates (will drain); at 3_010 core 5 reactivates. If 4
    // is Draining when 5 wants to wake, 5 must defer until 4 resolves.
    // Either way, by the end 5 must be Active and 4 asleep.
    sim.run(3_000);
    assert_eq!(sim.core.power(5), PowerState::Active, "router 5 failed to wake");
    assert_eq!(sim.core.power(4), PowerState::Sleep, "router 4 failed to gate");
    // Invariant held throughout (checked by protocol tests); here we just
    // confirm the end state is consistent.
}

#[test]
fn multiple_gate_wake_cycles_are_stable() {
    // Toggle one core five times; the router follows every time.
    let mut cores = Vec::new();
    for i in 0..5u64 {
        cores.push((i * 2_000, 9u16, false));
        cores.push((i * 2_000 + 1_000, 9u16, true));
    }
    let mut sim = flov_sim(FlovMode::Generalized, vec![], cores);
    let mut sleeps = 0;
    let mut last = PowerState::Active;
    for _ in 0..11_000 {
        sim.step();
        let p = sim.core.power(9);
        if p == PowerState::Sleep && last != PowerState::Sleep {
            sleeps += 1;
        }
        last = p;
    }
    assert!(sleeps >= 4, "only {sleeps} sleep entries over 5 gate cycles");
    assert_eq!(sim.core.power(9), PowerState::Active);
    // Each sleep entry and wake exit costs one gating event.
    assert!(sim.core.activity.gating_events >= 8);
}

#[test]
fn rflov_id_arbitration_smaller_id_wins() {
    // Gate two adjacent cores simultaneously under rFLOV: only one router
    // may sleep, and the in-order scan gives it to the smaller id.
    let mut sim = flov_sim(FlovMode::Restricted, vec![], vec![(0, 5, false), (0, 6, false)]);
    sim.run(2_000);
    assert_eq!(sim.core.power(5), PowerState::Sleep, "smaller id should win the drain");
    assert_eq!(sim.core.power(6), PowerState::Active, "larger id must stay active");
}

#[test]
fn aon_core_gating_changes_nothing() {
    // Gating a core in the always-on column must not gate its router.
    let mut sim = flov_sim(FlovMode::Generalized, vec![], vec![(0, 3, false), (0, 7, false)]);
    sim.run(2_000);
    assert_eq!(sim.core.power(3), PowerState::Active); // (3,0): AON column
    assert_eq!(sim.core.power(7), PowerState::Active); // (3,1): AON column
}

#[test]
fn through_traffic_does_not_block_draining_forever() {
    // Router 5 (1,1) gates at cycle 0; a steady stream crosses its row.
    // Draining blocks new transmissions *to* 5 but traffic can route
    // around / through until the sleep completes, after which it flies
    // over. The stream must never stall and 5 must eventually sleep.
    let mut events = Vec::new();
    for i in 0..120u64 {
        events.push((i * 25, PacketRequest { src: 4, dst: 7, vnet: 0, len: 4 }));
    }
    let mut sim = flov_sim(FlovMode::Generalized, events, vec![(0, 5, false), (0, 6, false)]);
    let end = sim.run_until_done(20_000);
    assert!(end < 20_000);
    assert_eq!(sim.core.activity.packets_delivered, 120);
    assert_eq!(sim.core.power(5), PowerState::Sleep);
    assert_eq!(sim.core.power(6), PowerState::Sleep);
    // Most of the stream should have used the fly-over row path.
    assert!(sim.core.activity.flov_latch_flits > 200);
}
