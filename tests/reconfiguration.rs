//! The Fig. 10 phenomenon as a test: Router Parking's Fabric-Manager
//! reconfiguration stalls injections and spikes queueing latency; gFLOV's
//! distributed handshakes do not.

use flov_bench::{run, RunSpec, WorkloadSpec};
use flov_noc::NocConfig;
use flov_power::PowerParams;
use flov_workloads::Pattern;

fn timeline_spec(mech: &str) -> RunSpec {
    RunSpec {
        cfg: NocConfig::paper_table1(),
        mechanism: mech.into(),
        workload: WorkloadSpec::Synthetic {
            pattern: Pattern::UniformRandom,
            rate: 0.02,
            gated_fraction: 0.1,
            seed: 77,
            changes: vec![20_000, 28_000],
        },
        warmup: 5_000,
        cycles: 40_000,
        drain: 60_000,
        timeline_width: 1_000,
        power_params: PowerParams::default(),
        audit: false,
        mech_switches: vec![],
    }
}

#[test]
fn rp_reconfiguration_stalls_injection_gflov_does_not() {
    let rp = run(&timeline_spec("RP"));
    let g = run(&timeline_spec("gFLOV"));
    assert!(rp.delivered_all && g.delivered_all);
    // RP stalled injections around the changes (initial config + 2 changes,
    // each >= 700 cycles).
    assert!(
        rp.stalled_injection_cycles > 500,
        "RP stalled only {} node-cycles",
        rp.stalled_injection_cycles
    );
    assert_eq!(g.stalled_injection_cycles, 0, "gFLOV must never stall injection");
}

#[test]
fn rp_latency_spikes_at_reconfiguration_gflov_stays_flat() {
    let rp = run(&timeline_spec("RP"));
    let g = run(&timeline_spec("gFLOV"));
    let peak = |r: &flov_bench::RunResult, from: u64, to: u64| -> f64 {
        r.timeline
            .iter()
            .filter(|s| s.start >= from && s.start < to && s.packets > 0)
            .map(|s| s.avg_latency())
            .fold(0.0, f64::max)
    };
    let base = |r: &flov_bench::RunResult| -> f64 {
        // Steady-state before the first change.
        let window: Vec<f64> = r
            .timeline
            .iter()
            .filter(|s| s.start >= 8_000 && s.start < 18_000 && s.packets > 0)
            .map(|s| s.avg_latency())
            .collect();
        window.iter().sum::<f64>() / window.len() as f64
    };
    // RP: packets ejected shortly after each change carry the queueing
    // delay of the Phase-I stall.
    let rp_spike = peak(&rp, 20_000, 26_000);
    let rp_base = base(&rp);
    assert!(
        rp_spike > rp_base * 3.0,
        "expected an RP latency spike: steady {rp_base:.1}, peak {rp_spike:.1}"
    );
    // gFLOV: no bucket in the same window comes close to that spike.
    let g_spike = peak(&g, 20_000, 26_000);
    let g_base = base(&g);
    assert!(
        g_spike < g_base * 2.5,
        "gFLOV should stay flat: steady {g_base:.1}, peak {g_spike:.1}"
    );
    assert!(g_spike < rp_spike / 2.0);
}

#[test]
fn gflov_keeps_delivering_during_its_reconfigurations() {
    let g = run(&timeline_spec("gFLOV"));
    // Packets were delivered in every bucket around the change points: the
    // distributed handshake never freezes the network.
    for s in g.timeline.iter().filter(|s| s.start >= 19_000 && s.start < 31_000) {
        assert!(s.packets > 0, "gFLOV delivered nothing in bucket starting {}", s.start);
    }
}

#[test]
fn rp_performs_reconfigurations_and_gates_power() {
    let rp = run(&timeline_spec("RP"));
    // Gating events happened at each reconfiguration (park + later unpark
    // across config changes).
    assert!(rp.gating_events >= 4, "RP produced only {} gating events", rp.gating_events);
}
