//! Integration tests for the NoRD extension baseline across the full stack:
//! synthetic sweeps, the PARSEC proxy, and the paper's §II positioning
//! claims (lowest static power, non-scalable ring latency).

use flov_bench::{run, RunSpec, WorkloadSpec};
use flov_noc::NocConfig;
use flov_power::PowerParams;
use flov_workloads::Pattern;

fn spec(mech: &str, k: u16, fraction: f64) -> RunSpec {
    RunSpec {
        cfg: NocConfig { k, ..NocConfig::paper_table1() },
        mechanism: mech.into(),
        workload: WorkloadSpec::Synthetic {
            pattern: Pattern::UniformRandom,
            rate: 0.02,
            gated_fraction: fraction,
            seed: 31,
            changes: vec![],
        },
        warmup: 2_000,
        cycles: 18_000,
        drain: 60_000,
        timeline_width: 0,
        power_params: PowerParams::default(),
        audit: false,
        mech_switches: vec![],
    }
}

#[test]
fn nord_delivers_everything_at_every_gating_level() {
    for fraction in [0.0, 0.4, 0.8] {
        let r = run(&spec("NoRD", 8, fraction));
        assert!(r.delivered_all, "NoRD lost packets at {fraction}");
        assert!(r.packets > 100);
    }
}

#[test]
fn nord_has_lowest_static_power() {
    // No AON column, no adjacency restriction, no delivery wakeups: NoRD
    // gates more router-cycles than every other mechanism.
    let frac = 0.6;
    let nord = run(&spec("NoRD", 8, frac));
    for other in ["gFLOV", "rFLOV", "RP-aggressive", "Baseline"] {
        let r = run(&spec(other, 8, frac));
        assert!(
            nord.power.static_w < r.power.static_w,
            "NoRD static {} !< {other} {}",
            nord.power.static_w,
            r.power.static_w
        );
    }
}

#[test]
fn nord_pays_latency_for_ring_trips_at_8x8() {
    let frac = 0.6;
    let nord = run(&spec("NoRD", 8, frac));
    let g = run(&spec("gFLOV", 8, frac));
    assert!(
        nord.avg_latency > g.avg_latency * 1.3,
        "expected a clear ring latency penalty: NoRD {} vs gFLOV {}",
        nord.avg_latency,
        g.avg_latency
    );
    assert!(nord.ring_flits > 0, "NoRD never used its ring");
    assert_eq!(g.ring_flits, 0, "gFLOV must not have a ring");
}

#[test]
fn ring_latency_penalty_grows_with_mesh_size() {
    // The paper's scalability critique as a regression test.
    let penalty = |k: u16| {
        let nord = run(&spec("NoRD", k, 0.75));
        let g = run(&spec("gFLOV", k, 0.75));
        nord.avg_latency / g.avg_latency
    };
    let p4 = penalty(4);
    let p8 = penalty(8);
    assert!(p8 > p4 + 0.3, "ring penalty should grow with k: k=4 ratio {p4:.2}, k=8 ratio {p8:.2}");
}

#[test]
fn nord_runs_the_full_system_proxy() {
    let r = run(&RunSpec::parsec("NoRD", "swaptions", 9));
    assert!(r.delivered_all, "NoRD failed the PARSEC proxy");
    assert!(r.packets > 9_000);
    // With phased idle sets, gating events and ring traffic both occur.
    assert!(r.gating_events > 0);
    assert!(r.ring_flits > 0);
}

#[test]
fn nord_energy_positioning_vs_flov() {
    // FLOV's pitch vs NoRD: comparable static savings at far better
    // latency. Check both directions of the trade at 8x8.
    let frac = 0.8;
    let nord = run(&spec("NoRD", 8, frac));
    let g = run(&spec("gFLOV", 8, frac));
    // NoRD's static power is lower, but within ~25% of gFLOV's.
    assert!(nord.power.static_w < g.power.static_w);
    assert!(g.power.static_w < nord.power.static_w * 1.35);
    // gFLOV's latency is far lower.
    assert!(g.avg_latency < nord.avg_latency);
}
