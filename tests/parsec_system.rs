//! Full-system (PARSEC-proxy) integration: work conservation, completion,
//! and the qualitative orderings behind the paper's headline numbers.

use flov_bench::{run, RunSpec};

fn parsec(mech: &str, bench: &str) -> flov_bench::RunResult {
    run(&RunSpec::parsec(mech, bench, 0x51))
}

#[test]
fn one_benchmark_completes_under_every_mechanism() {
    for mech in ["Baseline", "RP", "rFLOV", "gFLOV"] {
        let r = parsec(mech, "swaptions");
        assert!(r.delivered_all, "{mech}: swaptions did not complete");
        assert!(r.packets > 9_000, "{mech}: only {} packets", r.packets);
        assert!(r.runtime_cycles > 10_000);
    }
}

#[test]
fn same_work_is_done_by_all_mechanisms() {
    let base = parsec("Baseline", "blackscholes");
    let g = parsec("gFLOV", "blackscholes");
    let rp = parsec("RP", "blackscholes");
    // Work-based runs: identical packet counts (same generated work).
    assert_eq!(base.packets, g.packets);
    assert_eq!(base.packets, rp.packets);
}

#[test]
fn flov_runtime_close_to_baseline_rp_slower() {
    let base = parsec("Baseline", "x264");
    let g = parsec("gFLOV", "x264");
    let rp = parsec("RP", "x264");
    let g_slow = g.runtime_cycles as f64 / base.runtime_cycles as f64;
    let rp_slow = rp.runtime_cycles as f64 / base.runtime_cycles as f64;
    // Paper: FLOV performance degradation within ~1%; RP pays for
    // reconfiguration stalls (x264 reshuffles every 8k cycles).
    assert!(g_slow < 1.05, "gFLOV runtime blew up: {g_slow:.3}x");
    assert!(rp_slow > g_slow, "RP ({rp_slow:.3}x) should be slower than gFLOV ({g_slow:.3}x)");
}

#[test]
fn flov_saves_static_energy_vs_baseline_and_rp() {
    let base = parsec("Baseline", "canneal");
    let g = parsec("gFLOV", "canneal");
    let rp = parsec("RP", "canneal");
    let vs_base = g.power.static_j() / base.power.static_j();
    let vs_rp = g.power.static_j() / rp.power.static_j();
    // Paper: -43% vs Baseline, -22% vs RP on average; allow slack per
    // benchmark.
    assert!(vs_base < 0.75, "gFLOV static vs baseline only {vs_base:.3}");
    assert!(vs_rp < 1.0, "gFLOV static vs RP {vs_rp:.3}");
    // And total energy follows.
    assert!(g.power.total_j() < rp.power.total_j());
    assert!(g.power.total_j() < base.power.total_j());
}

#[test]
fn rp_stalls_show_up_in_full_system_runs() {
    let rp = parsec("RP", "dedup");
    assert!(
        rp.stalled_injection_cycles > 0,
        "dedup reshuffles its idle set; RP must have stalled at least once"
    );
    let g = parsec("gFLOV", "dedup");
    assert_eq!(g.stalled_injection_cycles, 0);
}

#[test]
fn parsec_runs_are_deterministic() {
    let a = parsec("gFLOV", "vips");
    let b = parsec("gFLOV", "vips");
    assert_eq!(a.runtime_cycles, b.runtime_cycles);
    assert_eq!(a.packets, b.packets);
    assert_eq!(a.gating_events, b.gating_events);
}
