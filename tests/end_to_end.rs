//! End-to-end integration: every mechanism delivers every packet, with the
//! expected relative behaviors, across traffic patterns and gating levels.

use flov_core::mechanism;
use flov_noc::network::Simulation;
use flov_noc::NocConfig;
use flov_workloads::{GatingSchedule, Pattern, SyntheticWorkload};

fn sim_with(
    mech_name: &str,
    pattern: Pattern,
    rate: f64,
    fraction: f64,
    cycles: u64,
    seed: u64,
) -> Simulation {
    let cfg = NocConfig::paper_table1();
    let mech = mechanism::by_name(mech_name, &cfg).unwrap();
    let w = SyntheticWorkload::new(
        cfg.k,
        pattern,
        rate,
        cfg.synth_packet_len,
        cycles,
        GatingSchedule::static_fraction(cfg.nodes(), fraction, seed, &[]),
        seed ^ 0x55,
    );
    Simulation::new(cfg, mech, Box::new(w))
}

fn run_and_check(mech_name: &str, pattern: Pattern, fraction: f64) -> Simulation {
    let cycles = 20_000;
    let mut sim = sim_with(mech_name, pattern, 0.02, fraction, cycles, 11);
    sim.measure_from(2_000);
    sim.run(cycles);
    sim.drain(80_000);
    assert!(
        sim.core.is_empty(),
        "{mech_name}/{}/{fraction}: {} packets undelivered",
        pattern.name(),
        sim.core.in_flight_packets
    );
    assert_eq!(
        sim.core.activity.packets_injected, sim.core.activity.packets_delivered,
        "{mech_name}: packet conservation violated"
    );
    assert_eq!(sim.core.flits_in_network(), 0);
    assert!(sim.core.stats.packets > 0, "{mech_name}: nothing measured");
    sim
}

#[test]
fn all_mechanisms_all_patterns_deliver_everything() {
    for mech in mechanism::ALL {
        for pattern in [Pattern::UniformRandom, Pattern::Tornado, Pattern::Transpose] {
            for fraction in [0.0, 0.5] {
                run_and_check(mech, pattern, fraction);
            }
        }
    }
}

#[test]
fn heavy_gating_still_delivers() {
    for mech in ["rFLOV", "gFLOV", "RP"] {
        run_and_check(mech, Pattern::UniformRandom, 0.8);
    }
}

#[test]
fn flov_latency_tracks_baseline_rp_does_not() {
    let base = run_and_check("Baseline", Pattern::UniformRandom, 0.5);
    let g = run_and_check("gFLOV", Pattern::UniformRandom, 0.5);
    let r = run_and_check("rFLOV", Pattern::UniformRandom, 0.5);
    let rp = run_and_check("RP", Pattern::UniformRandom, 0.5);
    let b_lat = base.core.stats.avg_latency();
    // FLOV within ~25% of baseline (paper: minimal degradation)...
    assert!(
        g.core.stats.avg_latency() < b_lat * 1.25,
        "gFLOV {} vs {}",
        g.core.stats.avg_latency(),
        b_lat
    );
    assert!(r.core.stats.avg_latency() < b_lat * 1.25);
    // ...while RP pays for detours.
    assert!(
        rp.core.stats.avg_latency() > g.core.stats.avg_latency(),
        "RP {} should exceed gFLOV {}",
        rp.core.stats.avg_latency(),
        g.core.stats.avg_latency()
    );
}

#[test]
fn only_flov_mechanisms_use_flov_links() {
    let g = run_and_check("gFLOV", Pattern::UniformRandom, 0.6);
    assert!(g.core.activity.flov_latch_flits > 0, "gFLOV never flew over");
    let rp = run_and_check("RP", Pattern::UniformRandom, 0.6);
    assert_eq!(rp.core.activity.flov_latch_flits, 0, "RP must not fly over");
    let base = run_and_check("Baseline", Pattern::UniformRandom, 0.6);
    assert_eq!(base.core.activity.flov_latch_flits, 0);
    assert_eq!(base.core.activity.gating_events, 0, "baseline must not gate");
}

#[test]
fn tornado_flov_beats_baseline_latency() {
    // Paper §VI-B-1: under Tornado, FLOV outperforms even the Baseline
    // because row traffic flies over gated routers in 1 cycle instead of
    // paying the 3-cycle pipeline.
    let base = run_and_check("Baseline", Pattern::Tornado, 0.6);
    let g = run_and_check("gFLOV", Pattern::Tornado, 0.6);
    assert!(
        g.core.stats.avg_latency() < base.core.stats.avg_latency(),
        "gFLOV {} should beat baseline {} under tornado",
        g.core.stats.avg_latency(),
        base.core.stats.avg_latency()
    );
    assert!(g.core.stats.avg_flov_hops() > 0.5);
}

#[test]
fn gflov_gates_more_routers_than_rflov_under_load() {
    let mut g = run_and_check("gFLOV", Pattern::UniformRandom, 0.7);
    let mut r = run_and_check("rFLOV", Pattern::UniformRandom, 0.7);
    // Compare gated residency over the run.
    let gated = |s: &mut Simulation| -> u64 { s.core.residency().iter().map(|r| r.gated).sum() };
    assert!(
        gated(&mut g) > gated(&mut r),
        "gFLOV gated-residency {} should exceed rFLOV {}",
        gated(&mut g),
        gated(&mut r)
    );
}

#[test]
fn zero_gating_makes_all_mechanisms_equivalent_to_baseline_power() {
    let mut base = run_and_check("Baseline", Pattern::UniformRandom, 0.0);
    for mech in ["rFLOV", "gFLOV", "RP"] {
        let mut m = run_and_check(mech, Pattern::UniformRandom, 0.0);
        // No router ever gates when every core is active.
        assert_eq!(m.core.activity.gating_events, 0, "{mech} gated with 0% idle");
        let b: u64 = base.core.residency().iter().map(|r| r.gated).sum();
        let g: u64 = m.core.residency().iter().map(|r| r.gated).sum();
        assert_eq!(b, 0);
        assert_eq!(g, 0, "{mech} has gated residency at 0% idle");
    }
}

#[test]
fn deterministic_across_runs() {
    let a = run_and_check("gFLOV", Pattern::UniformRandom, 0.4);
    let b = run_and_check("gFLOV", Pattern::UniformRandom, 0.4);
    assert_eq!(a.core.stats.latency_sum, b.core.stats.latency_sum);
    assert_eq!(a.core.activity, b.core.activity);
}

#[test]
fn rp_concentrates_traffic_into_hotspots() {
    // Paper §VI-B-1: "certain routers, connecting different network
    // partitions ... become network hotspots in RP". Compare the
    // link-utilization inequality (Gini) of RP vs gFLOV at 50% gating.
    let rp = run_and_check("RP", Pattern::UniformRandom, 0.5);
    let g = run_and_check("gFLOV", Pattern::UniformRandom, 0.5);
    let (rp_max, rp_mean, rp_gini) = flov_noc::render::link_util_summary(&rp.core);
    let (g_max, g_mean, g_gini) = flov_noc::render::link_util_summary(&g.core);
    assert!(rp_gini > g_gini, "RP gini {rp_gini:.3} should exceed gFLOV {g_gini:.3}");
    // Peak-to-mean is also worse under RP.
    assert!(
        rp_max as f64 / rp_mean > g_max as f64 / g_mean * 0.9,
        "RP peak/mean {:.1} vs gFLOV {:.1}",
        rp_max as f64 / rp_mean,
        g_max as f64 / g_mean
    );
}

#[test]
fn higher_rate_increases_contention_not_structure() {
    let lo = {
        let mut s = sim_with("gFLOV", Pattern::UniformRandom, 0.02, 0.3, 20_000, 5);
        s.measure_from(2_000);
        s.run(20_000);
        s.drain(50_000);
        s
    };
    let hi = {
        let mut s = sim_with("gFLOV", Pattern::UniformRandom, 0.08, 0.3, 20_000, 5);
        s.measure_from(2_000);
        s.run(20_000);
        s.drain(50_000);
        s
    };
    assert!(hi.core.is_empty() && lo.core.is_empty());
    let lo_b = &lo.core.stats.breakdown;
    let hi_b = &hi.core.stats.breakdown;
    let lo_cont = lo_b.contention as f64 / lo.core.stats.packets as f64;
    let hi_cont = hi_b.contention as f64 / hi.core.stats.packets as f64;
    assert!(hi_cont > lo_cont, "contention must grow with load: {lo_cont} -> {hi_cont}");
    // Serialization is structural: identical per packet.
    let lo_ser = lo_b.serialization as f64 / lo.core.stats.packets as f64;
    let hi_ser = hi_b.serialization as f64 / hi.core.stats.packets as f64;
    assert_eq!(lo_ser, 3.0);
    assert_eq!(hi_ser, 3.0);
}
