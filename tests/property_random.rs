//! Property-based tests (proptest): packet conservation, integrity and
//! determinism hold for *arbitrary* seeds, rates, gating fractions and
//! mechanisms. Flit payload integrity and in-order reassembly are asserted
//! inside the NIC on every delivery, so "everything delivered" implies
//! "everything delivered intact".

use flov_core::mechanism;
use flov_noc::network::Simulation;
use flov_noc::NocConfig;
use flov_workloads::{GatingSchedule, Pattern, SyntheticWorkload};
use proptest::prelude::*;

fn small_cfg() -> NocConfig {
    NocConfig { k: 4, vnets: 1, watchdog_cycles: 30_000, ..NocConfig::default() }
}

fn run_case(mech_name: &str, pattern: Pattern, rate: f64, fraction: f64, seed: u64) -> Simulation {
    let mut cfg = small_cfg();
    if mech_name == "NoRD" {
        cfg.enable_ring = true;
    }
    if mech_name == "PowerPunch" {
        cfg = flov_core::punch_config(&cfg);
    }
    let mech = mechanism::by_name(mech_name, &cfg).unwrap();
    let w = SyntheticWorkload::new(
        cfg.k,
        pattern,
        rate,
        cfg.synth_packet_len,
        6_000,
        GatingSchedule::static_fraction(cfg.nodes(), fraction, seed, &[]),
        seed ^ 0xBEEF,
    );
    let mut sim = Simulation::new(cfg, mech, Box::new(w));
    sim.run(6_000);
    sim.drain(60_000);
    sim
}

const MECHS: [&str; 6] = ["Baseline", "RP", "rFLOV", "gFLOV", "NoRD", "PowerPunch"];

fn mech_from(idx: u8) -> &'static str {
    MECHS[(idx as usize) % MECHS.len()]
}

fn pattern_from(idx: u8) -> Pattern {
    [
        Pattern::UniformRandom,
        Pattern::Tornado,
        Pattern::Transpose,
        Pattern::BitComplement,
        Pattern::Neighbor,
    ][(idx as usize) % 5]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Conservation: every generated packet is delivered exactly once, with
    /// payload integrity, under any mechanism/pattern/gating/seed.
    #[test]
    fn packets_conserved(
        mech_idx in 0u8..6,
        pat_idx in 0u8..5,
        rate in 0.01f64..0.10,
        fraction in 0.0f64..0.85,
        seed in 0u64..1_000_000,
    ) {
        let sim = run_case(mech_from(mech_idx), pattern_from(pat_idx), rate, fraction, seed);
        prop_assert!(sim.core.is_empty(), "{} packets undelivered", sim.core.in_flight_packets);
        prop_assert_eq!(sim.core.activity.packets_injected, sim.core.activity.packets_delivered);
        prop_assert_eq!(sim.core.activity.flits_injected, sim.core.activity.flits_delivered);
        prop_assert_eq!(sim.core.flits_in_network(), 0);
    }

    /// Determinism: identical inputs give identical results.
    #[test]
    fn deterministic(
        mech_idx in 0u8..6,
        fraction in 0.0f64..0.8,
        seed in 0u64..100_000,
    ) {
        let a = run_case(mech_from(mech_idx), Pattern::UniformRandom, 0.04, fraction, seed);
        let b = run_case(mech_from(mech_idx), Pattern::UniformRandom, 0.04, fraction, seed);
        prop_assert_eq!(a.core.activity, b.core.activity);
        prop_assert_eq!(a.core.stats.latency_sum, b.core.stats.latency_sum);
        prop_assert_eq!(a.core.cycle, b.core.cycle);
    }

    /// Latency floor: no packet beats the physically minimal latency
    /// (its flits must traverse at least two routers and two links).
    #[test]
    fn latency_floor_respected(
        mech_idx in 0u8..6,
        seed in 0u64..100_000,
    ) {
        let sim = run_case(mech_from(mech_idx), Pattern::UniformRandom, 0.02, 0.3, seed);
        if sim.core.stats.packets > 0 {
            // 2 routers x 3 stages + 2 links + (4-1) serialization = 11.
            prop_assert!(sim.core.stats.avg_latency() >= 11.0,
                "impossible latency {}", sim.core.stats.avg_latency());
        }
    }

    /// Residency conservation: powered + gated cycles equal the wall clock
    /// for every router, and the baseline never gates.
    #[test]
    fn residency_conserved(
        mech_idx in 0u8..6,
        fraction in 0.0f64..0.8,
        seed in 0u64..100_000,
    ) {
        let mut sim = run_case(mech_from(mech_idx), Pattern::UniformRandom, 0.03, fraction, seed);
        let total = sim.core.cycle;
        for r in sim.core.residency() {
            prop_assert_eq!(r.powered + r.gated, total);
        }
        if mech_from(mech_idx) == "Baseline" {
            prop_assert!(sim.core.residency().iter().all(|r| r.gated == 0));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Gating monotonicity: under gFLOV, more gated cores never increases
    /// total powered residency.
    #[test]
    fn more_gating_less_powered_residency(seed in 0u64..50_000) {
        let mut lo = run_case("gFLOV", Pattern::UniformRandom, 0.02, 0.2, seed);
        let mut hi = run_case("gFLOV", Pattern::UniformRandom, 0.02, 0.7, seed);
        let powered = |s: &mut Simulation| -> u64 {
            s.core.residency().iter().map(|r| r.powered).sum()
        };
        // Normalize per cycle (runs may end at different cycles).
        let lo_frac = powered(&mut lo) as f64 / (lo.core.cycle * lo.core.nodes() as u64) as f64;
        let hi_frac = powered(&mut hi) as f64 / (hi.core.cycle * hi.core.nodes() as u64) as f64;
        prop_assert!(hi_frac < lo_frac + 0.02,
            "powered fraction rose with gating: {lo_frac} -> {hi_frac}");
    }
}
