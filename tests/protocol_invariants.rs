//! Per-cycle protocol invariants, checked while the simulation runs:
//! rFLOV's adjacency restriction, gFLOV's forbidden logical-neighbor state
//! combinations, the always-on column, escape-turn legality, and wormhole
//! well-formedness.

use flov_core::routing::escape_turn_legal;
use flov_core::{Flov, FlovMode, FlovParams};
use flov_noc::network::{NetworkCore, Simulation};
use flov_noc::routing::RouteCtx;
use flov_noc::traits::{PowerMechanism, PowerView};
use flov_noc::types::{Dir, NodeId, Port, PowerState};
use flov_noc::NocConfig;
use flov_workloads::{GatingSchedule, Pattern, SyntheticWorkload};
use std::sync::Mutex;

fn make_sim(mode: FlovMode, fraction: f64, cycles: u64) -> Simulation {
    let cfg = NocConfig::paper_table1();
    let mech = Flov::new(mode, FlovParams::for_config(&cfg), cfg.nodes());
    let w = SyntheticWorkload::new(
        cfg.k,
        Pattern::UniformRandom,
        0.03,
        cfg.synth_packet_len,
        cycles,
        GatingSchedule::static_fraction(cfg.nodes(), fraction, 17, &[]),
        23,
    );
    Simulation::new(cfg, Box::new(mech), Box::new(w))
}

#[test]
fn rflov_no_two_adjacent_non_active_sleepers_ever() {
    let mut sim = make_sim(FlovMode::Restricted, 0.7, 15_000);
    for _ in 0..15_000 {
        sim.step();
        for n in 0..sim.core.nodes() as NodeId {
            if sim.core.power(n) != PowerState::Sleep {
                continue;
            }
            for d in Dir::ALL {
                if let Some(m) = sim.core.neighbor(n, d) {
                    assert_ne!(
                        sim.core.power(m),
                        PowerState::Sleep,
                        "rFLOV: adjacent sleepers {n},{m} at cycle {}",
                        sim.core.cycle
                    );
                }
            }
        }
    }
    sim.drain(50_000);
    assert!(sim.core.is_empty());
}

#[test]
fn gflov_no_draining_draining_or_draining_wakeup_logical_pairs() {
    let mut sim = make_sim(FlovMode::Generalized, 0.6, 15_000);
    for _ in 0..15_000 {
        sim.step();
        for n in 0..sim.core.nodes() as NodeId {
            let pn = sim.core.power(n);
            if pn != PowerState::Draining {
                continue;
            }
            for d in Dir::ALL {
                if let Some((m, _)) = sim.core.logical_neighbor(n, d) {
                    let pm = sim.core.power(m);
                    if pm == PowerState::Draining {
                        // Both draining simultaneously is the forbidden
                        // combination — except during the single scan in
                        // which the earlier id just transitioned; since we
                        // observe *between* cycles, it must never persist.
                        panic!(
                            "gFLOV: Draining-Draining logical pair {n},{m} at cycle {}",
                            sim.core.cycle
                        );
                    }
                }
            }
        }
    }
    sim.drain(50_000);
    assert!(sim.core.is_empty());
}

#[test]
fn aon_column_never_gates() {
    for mode in [FlovMode::Restricted, FlovMode::Generalized] {
        let mut sim = make_sim(mode, 0.8, 10_000);
        let k = sim.core.cfg.k;
        for _ in 0..10_000 {
            sim.step();
            for y in 0..k {
                let n = y * k + (k - 1);
                assert_eq!(
                    sim.core.power(n),
                    PowerState::Active,
                    "AON router {n} left Active at cycle {}",
                    sim.core.cycle
                );
            }
        }
        sim.drain(80_000);
        assert!(sim.core.is_empty());
    }
}

#[test]
fn corner_routers_may_gate_but_never_hold_latched_flits() {
    let mut sim = make_sim(FlovMode::Generalized, 0.8, 12_000);
    let k = sim.core.cfg.k;
    let corners = [0, k - 1, k * (k - 1), k * k - 1];
    for _ in 0..12_000 {
        sim.step();
        for &c in &corners {
            // Corners have no FLOV links: their latches must stay empty in
            // every state.
            assert!(sim.core.routers[c as usize].latches_empty(), "corner {c} has a latched flit");
        }
    }
    sim.drain(80_000);
    assert!(sim.core.is_empty());
}

/// Wraps a mechanism and verifies every escape-route decision obeys the
/// Fig. 4(b) turn rules (after the first escape hop, which may reverse).
struct TurnChecker {
    inner: Flov,
    violations: Mutex<Vec<String>>,
}

impl PowerMechanism for TurnChecker {
    fn name(&self) -> &'static str {
        "turn-checker"
    }

    fn step(&mut self, core: &mut NetworkCore) {
        self.inner.step(core);
    }

    fn route(&self, net: &dyn PowerView, ctx: &RouteCtx) -> Option<Port> {
        let out = self.inner.route(net, ctx)?;
        if ctx.escape && ctx.in_port != Port::Local && out != Port::Local {
            if let Some(in_dir) = ctx.in_port.dir() {
                let travel_in = in_dir.opposite();
                let travel_out = out.dir().unwrap();
                // The diversion hop itself may reverse (escape entry); a
                // same-direction exit or a legal turn is required otherwise.
                // We cannot distinguish entry here, so only flag turns that
                // are neither legal nor a pure reversal.
                if travel_out != travel_in.opposite() && !escape_turn_legal(travel_in, travel_out) {
                    self.violations.lock().unwrap().push(format!(
                        "illegal escape turn {travel_in:?}->{travel_out:?} at {:?} dst {:?}",
                        ctx.at, ctx.dst
                    ));
                }
            }
        }
        Some(out)
    }
}

#[test]
fn escape_routing_obeys_turn_model_in_vivo() {
    let cfg = NocConfig::paper_table1();
    let mech = TurnChecker { inner: Flov::generalized(&cfg), violations: Mutex::new(Vec::new()) };
    let w = SyntheticWorkload::new(
        cfg.k,
        Pattern::UniformRandom,
        0.05,
        cfg.synth_packet_len,
        20_000,
        GatingSchedule::static_fraction(cfg.nodes(), 0.6, 31, &[]),
        37,
    );
    let mut sim = Simulation::new(cfg, Box::new(mech), Box::new(w));
    sim.run(20_000);
    sim.drain(80_000);
    assert!(sim.core.is_empty());
    // Reach into the checker via a fresh route call is impossible now (the
    // mechanism is boxed); instead the checker would have pushed
    // violations. We verify by proxy: escape packets were actually routed.
    // (Violations panic below if any were recorded.)
    // Note: the box is owned by the sim; drop order runs Drop handlers.
    // We assert via the recorded side channel:
    // -- reconstruct: the checker cannot be recovered from Box<dyn>, so it
    //    panics on drop instead if it saw violations.
    drop(sim);
}

impl Drop for TurnChecker {
    fn drop(&mut self) {
        let v = self.violations.lock().unwrap();
        assert!(v.is_empty(), "escape turn violations: {:#?}", &v[..v.len().min(5)]);
    }
}

#[test]
fn wormholes_never_interleave_at_destination() {
    // The NIC asserts flit ordering per packet internally; run a congested
    // scenario to exercise it hard.
    let mut sim = make_sim(FlovMode::Generalized, 0.5, 10_000);
    // Crank the rate by running longer with drain.
    sim.run(10_000);
    sim.drain(80_000);
    assert!(sim.core.is_empty());
    assert_eq!(
        sim.core.activity.flits_injected, sim.core.activity.flits_delivered,
        "flit conservation violated"
    );
}

#[test]
fn gflov_gates_consecutive_routers() {
    // The defining capability of gFLOV: at high gating, some row or column
    // must contain two adjacent sleepers.
    let mut sim = make_sim(FlovMode::Generalized, 0.8, 8_000);
    sim.run(8_000);
    let mut found = false;
    for n in 0..sim.core.nodes() as NodeId {
        if sim.core.power(n) != PowerState::Sleep {
            continue;
        }
        for d in [Dir::East, Dir::North] {
            if let Some(m) = sim.core.neighbor(n, d) {
                if sim.core.power(m) == PowerState::Sleep {
                    found = true;
                }
            }
        }
    }
    assert!(found, "gFLOV at 80% gating produced no consecutive sleepers");
    sim.drain(80_000);
    assert!(sim.core.is_empty());
}
