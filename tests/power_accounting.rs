//! Cross-crate power-accounting consistency: simulator activity feeding the
//! power model produces internally consistent, correctly ordered energy.

use flov_bench::{run, RunSpec, WorkloadSpec};
use flov_noc::NocConfig;
use flov_power::PowerParams;
use flov_workloads::Pattern;

fn spec(mech: &str, rate: f64, fraction: f64) -> RunSpec {
    RunSpec {
        cfg: NocConfig::paper_table1(),
        mechanism: mech.into(),
        workload: WorkloadSpec::Synthetic {
            pattern: Pattern::UniformRandom,
            rate,
            gated_fraction: fraction,
            seed: 99,
            changes: vec![],
        },
        warmup: 3_000,
        cycles: 18_000,
        drain: 60_000,
        timeline_width: 0,
        power_params: PowerParams::default(),
        audit: false,
        mech_switches: vec![],
    }
}

#[test]
fn total_is_static_plus_dynamic() {
    for mech in ["Baseline", "RP", "rFLOV", "gFLOV"] {
        let r = run(&spec(mech, 0.04, 0.4));
        let p = &r.power;
        assert!((p.total_w - (p.static_w + p.dynamic_w)).abs() < 1e-12);
        assert!((p.total_j() - (p.static_j() + p.dynamic_j())).abs() < 1e-15);
        assert!(p.static_w > 0.0 && p.dynamic_w > 0.0);
    }
}

#[test]
fn dynamic_power_scales_with_injection_rate() {
    let lo = run(&spec("Baseline", 0.02, 0.0));
    let hi = run(&spec("Baseline", 0.08, 0.0));
    let ratio = hi.power.dynamic_w / lo.power.dynamic_w;
    assert!((3.0..5.0).contains(&ratio), "4x rate should give ~4x dynamic power, got {ratio:.2}x");
    // Static power is rate-independent for the always-on baseline.
    assert!((hi.power.static_w - lo.power.static_w).abs() < 1e-9);
}

#[test]
fn static_power_ordering_at_high_gating() {
    // Paper Fig. 9 at high gated fractions: gFLOV < RP(aggressive) < rFLOV
    // < Baseline.
    let base = run(&spec("Baseline", 0.02, 0.8));
    let rp = run(&spec("RP-aggressive", 0.02, 0.8));
    let rf = run(&spec("rFLOV", 0.02, 0.8));
    let gf = run(&spec("gFLOV", 0.02, 0.8));
    assert!(
        gf.power.static_w < rp.power.static_w,
        "gFLOV {} !< RP {}",
        gf.power.static_w,
        rp.power.static_w
    );
    assert!(
        rp.power.static_w < rf.power.static_w,
        "RP {} !< rFLOV {}",
        rp.power.static_w,
        rf.power.static_w
    );
    assert!(rf.power.static_w < base.power.static_w);
}

#[test]
fn rp_dynamic_power_exceeds_flov_due_to_detours() {
    // Paper Fig. 6(b): RP's non-minimal rerouting costs dynamic power;
    // FLOV's latch hops are far cheaper than full router hops.
    let rp = run(&spec("RP", 0.04, 0.5));
    let gf = run(&spec("gFLOV", 0.04, 0.5));
    assert!(
        rp.power.dynamic_w > gf.power.dynamic_w,
        "RP dynamic {} should exceed gFLOV {}",
        rp.power.dynamic_w,
        gf.power.dynamic_w
    );
}

#[test]
fn flov_dynamic_beats_baseline_at_high_gating() {
    // Paper: "At higher fractions of power-gated cores, the FLOV mechanism
    // consumes less dynamic power than Baseline due to avoiding the router
    // pipeline execution."
    let base = run(&spec("Baseline", 0.04, 0.7));
    let gf = run(&spec("gFLOV", 0.04, 0.7));
    assert!(
        gf.power.dynamic_w < base.power.dynamic_w,
        "gFLOV dynamic {} should beat baseline {}",
        gf.power.dynamic_w,
        base.power.dynamic_w
    );
}

#[test]
fn gating_events_recorded_and_costed() {
    // Static gating transitions happen right after cycle 0, so measure the
    // whole run (no warmup) to capture them.
    let gf = run(&RunSpec { warmup: 0, ..spec("gFLOV", 0.02, 0.6) });
    assert!(gf.gating_events > 0);
    let expected = gf.gating_events as f64 * 17.7e-12;
    assert!((gf.power.dynamic_energy.gating - expected).abs() < 1e-15);
}

#[test]
fn flov_latch_energy_only_for_flov() {
    let gf = run(&spec("gFLOV", 0.04, 0.6));
    let rp = run(&spec("RP", 0.04, 0.6));
    assert!(gf.power.dynamic_energy.flov_latches > 0.0);
    assert_eq!(rp.power.dynamic_energy.flov_latches, 0.0);
}

#[test]
fn energy_window_is_the_measured_region() {
    let r = run(&spec("Baseline", 0.02, 0.0));
    // 18_000 total - 3_000 warmup = 15_000 cycles at 2 GHz = 7.5 us.
    assert_eq!(r.power.cycles, 15_000);
    assert!((r.power.seconds - 7.5e-6).abs() < 1e-12);
}
