//! Synthetic sweep: the paper's Fig. 6 methodology on a configurable axis —
//! sweep the fraction of power-gated cores under a chosen traffic pattern
//! and injection rate, printing one row per point for all four mechanisms.
//!
//! Run with:
//!   cargo run --release --example synthetic_sweep
//!   cargo run --release --example synthetic_sweep -- tornado 0.08
//!
//! (first arg: uniform|tornado|transpose|bitcomp|neighbor, second: rate)

use flov_bench::figures::SYNTH_MECHS;
use flov_bench::{run_all, RunSpec};
use flov_workloads::Pattern;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let pattern = match args.first().map(String::as_str) {
        None | Some("uniform") => Pattern::UniformRandom,
        Some("tornado") => Pattern::Tornado,
        Some("transpose") => Pattern::Transpose,
        Some("bitcomp") => Pattern::BitComplement,
        Some("neighbor") => Pattern::Neighbor,
        Some(other) => {
            eprintln!("unknown pattern {other:?}");
            std::process::exit(1);
        }
    };
    let rate: f64 = args.get(1).map(|s| s.parse().expect("rate")).unwrap_or(0.02);

    println!(
        "sweep: {} traffic at {rate} flits/cycle/node (10k warmup, 100k cycles)\n",
        pattern.name()
    );
    println!(
        "{:>7}  {:>10} {:>9} {:>9} {:>9}   {:>10} {:>9} {:>9} {:>9}",
        "gated%",
        "lat:Base",
        "lat:RP",
        "lat:rF",
        "lat:gF",
        "totW:Base",
        "totW:RP",
        "totW:rF",
        "totW:gF"
    );
    for fraction in [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8] {
        let specs: Vec<RunSpec> = SYNTH_MECHS
            .iter()
            .map(|m| RunSpec::synthetic_paper(m, pattern, rate, fraction, 0xF10F))
            .collect();
        let rs = run_all(&specs);
        println!(
            "{:>7.0}  {:>10.2} {:>9.2} {:>9.2} {:>9.2}   {:>10.1} {:>9.1} {:>9.1} {:>9.1}",
            fraction * 100.0,
            rs[0].avg_latency,
            rs[1].avg_latency,
            rs[2].avg_latency,
            rs[3].avg_latency,
            rs[0].power.total_w * 1e3,
            rs[1].power.total_w * 1e3,
            rs[2].power.total_w * 1e3,
            rs[3].power.total_w * 1e3,
        );
    }
}
