//! Full-system campaign: run the nine PARSEC-proxy benchmarks to completion
//! under Baseline, Router Parking and gFLOV; print per-benchmark runtime
//! and energy, normalized to Baseline — the workflow behind the paper's
//! headline "18% total / 22% static energy savings vs RP".
//!
//! Run with: `cargo run --release --example parsec_campaign [bench...]`

use flov_bench::{run_all, RunSpec};
use flov_workloads::PARSEC_BENCHMARKS;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let benches: Vec<&str> = if args.is_empty() {
        PARSEC_BENCHMARKS.iter().map(|b| b.name).collect()
    } else {
        PARSEC_BENCHMARKS.iter().map(|b| b.name).filter(|n| args.iter().any(|a| a == n)).collect()
    };
    assert!(!benches.is_empty(), "no matching benchmarks");
    let mechs = ["Baseline", "RP", "gFLOV"];

    let specs: Vec<RunSpec> = benches
        .iter()
        .flat_map(|&b| mechs.iter().map(move |&m| RunSpec::parsec(m, b, 0xF10F)))
        .collect();
    let results = run_all(&specs);

    println!(
        "{:>14} {:>9}  {:>8} {:>9} {:>9} {:>8}",
        "benchmark", "mech", "runtime", "static E", "total E", "cycles"
    );
    let mut rp_tot = 0.0f64;
    let mut rp_sta = 0.0f64;
    let mut n = 0.0f64;
    for (bi, &b) in benches.iter().enumerate() {
        let base = &results[bi * 3];
        for (mi, &m) in mechs.iter().enumerate() {
            let r = &results[bi * 3 + mi];
            println!(
                "{:>14} {:>9}  {:>8.3} {:>9.3} {:>9.3} {:>8}",
                b,
                m,
                r.runtime_cycles as f64 / base.runtime_cycles as f64,
                r.power.static_j() / base.power.static_j(),
                r.power.total_j() / base.power.total_j(),
                r.runtime_cycles,
            );
        }
        let rp = &results[bi * 3 + 1];
        let fl = &results[bi * 3 + 2];
        rp_tot += (fl.power.total_j() / rp.power.total_j()).ln();
        rp_sta += (fl.power.static_j() / rp.power.static_j()).ln();
        n += 1.0;
    }
    println!(
        "\ngFLOV vs RP (geomean over {} benchmarks): total energy {:+.1}%, static energy {:+.1}%",
        benches.len(),
        ((rp_tot / n).exp() - 1.0) * 100.0,
        ((rp_sta / n).exp() - 1.0) * 100.0,
    );
    println!("(paper: -18% total, -22% static)");
}
