//! Implementing a custom power-gating mechanism against the public API.
//!
//! `CheckerFlov` gates a router only on "black" checkerboard cells (so no
//! two sleepers are ever adjacent — a structural version of rFLOV's
//! restriction that needs no drain arbitration at all), drives the router
//! power FSM through the `NetworkCore` transition methods, and reuses the
//! partition-based FLOV routing. The example races it against rFLOV.
//!
//! Run with: `cargo run --release --example custom_policy`

use flov_core::routing::flov_route;
use flov_core::Flov;
use flov_noc::network::{NetworkCore, Simulation};
use flov_noc::routing::RouteCtx;
use flov_noc::traits::{PowerMechanism, PowerView};
use flov_noc::types::{NodeId, Port, PowerState};
use flov_noc::NocConfig;
use flov_workloads::{GatingSchedule, Pattern, SyntheticWorkload};

/// A minimal distributed gating policy: sleep only on checkerboard cells,
/// never in the always-on column.
struct CheckerFlov {
    wakeup_ramp: Vec<u32>,
    wake_buf: Vec<NodeId>,
}

impl CheckerFlov {
    fn new(nodes: usize) -> CheckerFlov {
        CheckerFlov { wakeup_ramp: vec![0; nodes], wake_buf: Vec::new() }
    }

    fn eligible(core: &NetworkCore, n: NodeId) -> bool {
        let c = core.coord(n);
        (c.x + c.y).is_multiple_of(2) && c.x + 1 != core.cfg.k // black cells, not AON
    }
}

impl PowerMechanism for CheckerFlov {
    fn name(&self) -> &'static str {
        "CheckerFLOV"
    }

    fn step(&mut self, core: &mut NetworkCore) {
        // Wake sleeping routers that block a delivery.
        let mut wake = std::mem::take(&mut self.wake_buf);
        core.take_wakeup_requests(&mut wake);
        for &n in &wake {
            if core.power(n) == PowerState::Sleep {
                core.begin_wakeup(n);
                self.wakeup_ramp[n as usize] = core.cfg.wakeup_latency;
            }
        }
        self.wake_buf = wake;
        for n in 0..core.nodes() as NodeId {
            match core.power(n) {
                PowerState::Active => {
                    let idle = core.routers[n as usize].local_idle(core.cycle) >= 16;
                    if !core.core_active[n as usize]
                        && idle
                        && !core.nic_pending(n)
                        && Self::eligible(core, n)
                    {
                        core.begin_drain(n);
                    }
                }
                PowerState::Draining => {
                    if core.core_active[n as usize] || core.nic_pending(n) {
                        core.abort_drain(n);
                    } else if core.routers[n as usize].is_drained() && core.fully_quiescent(n) {
                        core.enter_sleep(n);
                    }
                }
                PowerState::Sleep => {
                    if core.core_active[n as usize] || core.nic_pending(n) {
                        core.begin_wakeup(n);
                        self.wakeup_ramp[n as usize] = core.cfg.wakeup_latency;
                    }
                }
                PowerState::Wakeup => {
                    let ramp = &mut self.wakeup_ramp[n as usize];
                    if *ramp > 0 {
                        *ramp -= 1;
                    } else if core.routers[n as usize].latches_empty() && core.fully_quiescent(n) {
                        core.complete_wakeup(n);
                    }
                }
            }
        }
    }

    fn route(&self, _net: &dyn PowerView, ctx: &RouteCtx) -> Option<Port> {
        flov_route(ctx)
    }
}

fn race(name: &str, mech: Box<dyn PowerMechanism>) -> (f64, usize) {
    let cfg = NocConfig::paper_table1();
    let workload = SyntheticWorkload::new(
        cfg.k,
        Pattern::UniformRandom,
        0.02,
        cfg.synth_packet_len,
        40_000,
        GatingSchedule::static_fraction(cfg.nodes(), 0.6, 9, &[]),
        3,
    );
    let mut sim = Simulation::new(cfg, mech, Box::new(workload));
    sim.measure_from(5_000);
    sim.run(40_000);
    let asleep =
        (0..sim.core.nodes() as NodeId).filter(|&n| sim.core.power(n) == PowerState::Sleep).count();
    sim.drain(50_000);
    assert!(sim.core.is_empty(), "{name} lost packets");
    (sim.core.stats.avg_latency(), asleep)
}

fn main() {
    let cfg = NocConfig::paper_table1();
    let (lat_c, sleep_c) = race("CheckerFLOV", Box::new(CheckerFlov::new(cfg.nodes())));
    let (lat_r, sleep_r) = race("rFLOV", Box::new(Flov::restricted(&cfg)));
    println!("custom CheckerFLOV: avg latency {lat_c:.2} cycles, {sleep_c} routers asleep at steady state");
    println!("paper rFLOV:        avg latency {lat_r:.2} cycles, {sleep_r} routers asleep at steady state");
    println!("\nrFLOV gates any non-adjacent set (id arbitration), so it should sleep at least as many routers.");
}
