//! Quickstart: simulate an 8x8 mesh with half the cores power-gated, under
//! each of the four mechanisms of the paper (Baseline, Router Parking,
//! rFLOV, gFLOV), and print latency + power side by side.
//!
//! Run with: `cargo run --release --example quickstart`

use flov_core::mechanism;
use flov_noc::network::Simulation;
use flov_noc::NocConfig;
use flov_power::{GatedResidual, PowerParams};
use flov_workloads::{GatingSchedule, Pattern, SyntheticWorkload};

fn main() {
    let cfg = NocConfig::paper_table1(); // Table I: 8x8, 3-stage, 6-flit buffers...
    let warmup = 5_000u64;
    let cycles = 50_000u64;
    let gated_fraction = 0.5;
    let rate = 0.02; // flits/cycle/node

    println!(
        "FLOV quickstart: {}x{} mesh, {:.0}% cores gated, uniform random @ {rate} flits/cycle/node\n",
        cfg.k,
        cfg.k,
        gated_fraction * 100.0
    );
    println!(
        "{:>10}  {:>12} {:>10} {:>11} {:>12} {:>10}",
        "mechanism", "avg lat [cy]", "flov hops", "static [mW]", "dynamic [mW]", "total [mW]"
    );

    for name in mechanism::ALL {
        let mech = mechanism::by_name(name, &cfg).unwrap();
        let workload = SyntheticWorkload::new(
            cfg.k,
            Pattern::UniformRandom,
            rate,
            cfg.synth_packet_len,
            cycles,
            GatingSchedule::static_fraction(cfg.nodes(), gated_fraction, 7, &[]),
            42,
        );
        let mut sim = Simulation::new(cfg.clone(), mech, Box::new(workload));
        sim.measure_from(warmup);
        sim.run(warmup);
        let act0 = sim.core.activity.clone();
        let res0 = sim.core.residency().to_vec();
        sim.run(cycles - warmup);
        let window = sim.core.cycle - warmup;
        sim.drain(50_000); // let in-flight packets finish

        let activity = sim.core.activity.delta_since(&act0);
        let residency = flov_power::residency_delta(sim.core.residency(), &res0);
        let power = flov_power::compute(
            &PowerParams::dsent_32nm(),
            cfg.k,
            &activity,
            &residency,
            window,
            GatedResidual::for_mechanism(name),
        );
        let s = &sim.core.stats;
        println!(
            "{:>10}  {:>12.2} {:>10.2} {:>11.1} {:>12.1} {:>10.1}",
            name,
            s.avg_latency(),
            s.avg_flov_hops(),
            power.static_w * 1e3,
            power.dynamic_w * 1e3,
            power.total_w * 1e3,
        );
        assert!(sim.core.is_empty(), "{name}: packets left undelivered");
    }

    println!("\ngFLOV should show the lowest total power; RP the highest latency (detours).");
}
